//! Packed, cache-blocked, multi-threaded GEMM engine with SIMD microkernels
//! and an implicit-GEMM convolution front end.
//!
//! Convolutions lower onto matrix products, so this one kernel carries
//! essentially all the arithmetic of the digital reference path and of the
//! functional analog executor. It follows the classic BLIS/GotoBLAS
//! decomposition, in safe Rust:
//!
//! - The operand matrices are tiled into `MC×KC` blocks of A and `KC×NC`
//!   panels of B, sized so the packed A block lives in L2 and each B
//!   column-panel streams through L1.
//! - Both operands are *packed* into contiguous panel buffers before the
//!   inner loops run. Packing reads the source once (in whatever layout the
//!   transpose flags dictate) and writes panel-major scratch, which is what
//!   lets a single engine serve `A·B`, `Aᵀ·B`, and `A·Bᵀ` — the transpose
//!   is absorbed by the gather in the pack step and the inner loops never
//!   see it.
//! - An `MR×NR` register microkernel with fixed-size array accumulators
//!   does the arithmetic. Three variants exist — portable, AVX2, AVX-512 —
//!   selected by a [`SimdLevel`]; the vector kernels are lane-parallel over
//!   `NR` with *separate* multiply and add instructions (no FMA
//!   contraction), so all three accumulate every output element in the
//!   exact scalar `k`-order and are bit-identical (see [`crate::simd`]).
//! - When a thread budget is given and the product is large enough to
//!   amortize spawning, output row bands are computed in parallel with
//!   scoped threads. Workers share the packed B panel read-only and each
//!   packs its own A blocks into a private region of the caller's
//!   [`PackBuffers`], so the parallel path allocates nothing either.
//!
//! Results are bit-identical across thread counts: every output element is
//! accumulated by exactly one worker in the same `KC`-block order.
//!
//! # Implicit-GEMM convolution
//!
//! Convolution does not need a materialized `im2col` matrix: the only
//! consumer of that matrix is the B-panel packer, which immediately
//! re-copies it into `KC×NR` panels. [`conv_gemm_into`] and
//! [`conv_gemm_packed_into`] instead pack those panels *directly from the
//! `C×H×W` input tensor* — the packer walks the receptive-field taps that
//! `im2col` would have written, emitting zeros for padding taps — which
//! deletes a full write+read pass over the patch matrix and shrinks the
//! conv workspace by `patch_len × out_positions` floats. Because the packed
//! panel bytes are identical to packing an explicit `im2col` matrix, and
//! blocking and microkernel are shared, the implicit path is bit-identical
//! to the `im2col` + [`gemm_into`] oracle at every geometry, level, and
//! thread count.
//!
//! [`PackedWeights`] completes the picture for inference engines that run
//! the same filters every frame: the A-side (weight) packing is hoisted
//! out of the per-frame loop entirely and shared read-only across threads
//! and frames, byte-identical to on-the-fly packing by layout construction.

use crate::conv::ConvGeom;
use crate::simd::SimdLevel;
use crate::workspace::{PackBuffers, Workspace};
use crate::{Tensor, TensorError};

/// Microkernel tile rows (output rows accumulated in registers at once).
const MR: usize = 8;
/// Microkernel tile columns.
const NR: usize = 16;
/// Rows of A packed per L2-resident block (multiple of `MR`).
const MC: usize = 64;
/// Inner-dimension extent of one packed block.
const KC: usize = 256;
/// Columns of B packed per shared panel (multiple of `NR`).
const NC: usize = 512;
/// Below this many flops (2·m·n·k) the product runs single-threaded: the
/// thread-spawn cost exceeds the work of a whole small product.
const PARALLEL_FLOP_THRESHOLD: usize = 1 << 18;

/// Grows `v` to at least `len` elements and returns the prefix slice.
fn ensure_len(v: &mut Vec<f32>, len: usize) -> &mut [f32] {
    if v.len() < len {
        v.resize(len, 0.0);
    }
    &mut v[..len]
}

/// Packs the `mc×kc` block of `op(A)` starting at (`row0`, `pc`) into
/// MR-row panels: `dst[panel][p][r] = op(A)[row0 + panel·MR + r][pc + p]`,
/// zero-padding rows past `mc` so the microkernel never branches on edges.
///
/// `trans_a` selects the gather: `op(A)[i][p]` reads `a[i·k + p]` when
/// `false` (A stored `m×k`) and `a[p·m + i]` when `true` (A stored `k×m`).
#[allow(clippy::too_many_arguments)]
fn pack_a_block(
    a: &[f32],
    trans_a: bool,
    m: usize,
    k: usize,
    row0: usize,
    mc: usize,
    pc: usize,
    kc: usize,
    dst: &mut [f32],
) {
    let panels = mc.div_ceil(MR);
    for pi in 0..panels {
        let panel = &mut dst[pi * MR * kc..(pi + 1) * MR * kc];
        for p in 0..kc {
            for r in 0..MR {
                let row = pi * MR + r;
                panel[p * MR + r] = if row < mc {
                    let (i, pp) = (row0 + row, pc + p);
                    if trans_a {
                        a[pp * m + i]
                    } else {
                        a[i * k + pp]
                    }
                } else {
                    0.0
                };
            }
        }
    }
}

/// Packs the `kc×nc` panel of `op(B)` starting at (`pc`, `jc`) into NR-column
/// panels: `dst[panel][p][c] = op(B)[pc + p][jc + panel·NR + c]`, zero-padded
/// past `nc`.
///
/// `trans_b` selects the gather: `op(B)[p][j]` reads `b[p·n + j]` when
/// `false` (B stored `k×n`) and `b[j·k + p]` when `true` (B stored `n×k`).
#[allow(clippy::too_many_arguments)]
fn pack_b_panel(
    b: &[f32],
    trans_b: bool,
    n: usize,
    k: usize,
    jc: usize,
    nc: usize,
    pc: usize,
    kc: usize,
    dst: &mut [f32],
) {
    let panels = nc.div_ceil(NR);
    for pi in 0..panels {
        let panel = &mut dst[pi * NR * kc..(pi + 1) * NR * kc];
        for p in 0..kc {
            for c in 0..NR {
                let col = pi * NR + c;
                panel[p * NR + c] = if col < nc {
                    let (j, pp) = (jc + col, pc + p);
                    if trans_b {
                        b[j * k + pp]
                    } else {
                        b[pp * n + j]
                    }
                } else {
                    0.0
                };
            }
        }
    }
}

/// Packs the `kc×nc` panel of the *virtual* `im2col` matrix of `src`
/// (`C×H×W`, per `geom`) starting at (`pc`, `jc`) — the implicit-GEMM
/// gather. Produces bytes identical to running [`pack_b_panel`] over an
/// explicit `im2col` matrix: patch row `pc + p` decodes to a channel/tap
/// `(ch, ky, kx)`, column `jc + col` decodes to an output position
/// `(oy, ox)`, and the packed value is the input pixel under that tap, or
/// `0.0` when the tap falls in the padding border.
#[allow(clippy::too_many_arguments)]
fn pack_b_conv_panel(
    src: &[f32],
    geom: &ConvGeom,
    jc: usize,
    nc: usize,
    pc: usize,
    kc: usize,
    dst: &mut [f32],
) {
    let (in_h, in_w) = (geom.in_h(), geom.in_w());
    let (kh, kw) = (geom.kernel_h(), geom.kernel_w());
    let (stride, pad) = (geom.stride(), geom.pad());
    let out_w = geom.out_w();
    let panels = nc.div_ceil(NR);
    for pi in 0..panels {
        let panel = &mut dst[pi * NR * kc..(pi + 1) * NR * kc];
        // Real (non-pad-past-nc) columns of this panel and their first
        // output position; `oy`/`ox` then advance incrementally.
        let cols = NR.min(nc.saturating_sub(pi * NR));
        let j0 = jc + pi * NR;
        for p in 0..kc {
            let pr = pc + p;
            let (ch, tap) = (pr / (kh * kw), pr % (kh * kw));
            let (ky, kx) = (tap / kw, tap % kw);
            let plane = &src[ch * in_h * in_w..(ch + 1) * in_h * in_w];
            let (mut oy, mut ox) = (j0 / out_w, j0 % out_w);
            let step = &mut panel[p * NR..(p + 1) * NR];
            for (c, slot) in step.iter_mut().enumerate() {
                *slot = if c < cols {
                    let y = (oy * stride + ky) as isize - pad as isize;
                    let x = (ox * stride + kx) as isize - pad as isize;
                    ox += 1;
                    if ox == out_w {
                        ox = 0;
                        oy += 1;
                    }
                    if y >= 0 && (y as usize) < in_h && x >= 0 && (x as usize) < in_w {
                        plane[y as usize * in_w + x as usize]
                    } else {
                        0.0
                    }
                } else {
                    0.0
                };
            }
        }
    }
}

/// Filter weights pre-packed into the engine's A-panel layout, built once
/// and shared read-only across frames and worker threads.
///
/// The layout is `KC`-block major: block `bi` holds all `⌈m/MR⌉` MR-row
/// panels for inner columns `[bi·KC, bi·KC + kc)`, exactly the bytes
/// [`pack_a_block`] would produce for those coordinates (rows past `m`
/// zero-padded). Band/`MC` sub-blocking never changes panel contents —
/// band boundaries are MR-aligned — so a GEMM reading these panels is
/// bit-identical to one packing A on the fly.
#[derive(Debug, Clone)]
pub struct PackedWeights {
    data: Vec<f32>,
    m: usize,
    k: usize,
}

impl PackedWeights {
    /// Packs an `m×k` row-major weight matrix.
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != m·k`.
    pub fn pack(a: &[f32], m: usize, k: usize) -> Self {
        assert_eq!(a.len(), m * k, "weights length vs {m}x{k}");
        let panels = m.div_ceil(MR);
        let mut data = Vec::new();
        let mut pc = 0usize;
        while pc < k {
            let kc = KC.min(k - pc);
            let start = data.len();
            data.resize(start + panels * MR * kc, 0.0);
            pack_a_block(a, false, m, k, 0, m, pc, kc, &mut data[start..]);
            pc += kc;
        }
        PackedWeights { data, m, k }
    }

    /// Output-row count (filters).
    pub fn m(&self) -> usize {
        self.m
    }

    /// Inner extent (patch length).
    pub fn k(&self) -> usize {
        self.k
    }

    /// Heap bytes held by the packed panels.
    pub fn bytes(&self) -> usize {
        self.data.capacity() * std::mem::size_of::<f32>()
    }

    /// The packed panels for inner block (`pc`, `kc`) from row `row0` on.
    ///
    /// `row0` must be MR-aligned and `pc` KC-aligned — both invariants the
    /// blocked driver maintains — so the slice starts exactly at a panel
    /// boundary of the stored layout.
    fn block_panels(&self, row0: usize, pc: usize, kc: usize) -> &[f32] {
        debug_assert_eq!(row0 % MR, 0);
        debug_assert_eq!(pc % KC, 0);
        let panels = self.m.div_ceil(MR);
        // Every block before the last has kc == KC, so block offsets are
        // uniform; only the final block is shorter.
        let block_off = (pc / KC) * panels * MR * KC;
        let start = block_off + (row0 / MR) * MR * kc;
        &self.data[start..block_off + panels * MR * kc]
    }
}

/// The A operand of a blocked product: a raw matrix packed on the fly per
/// block, or pre-packed panels shared read-only.
#[derive(Clone, Copy)]
enum ASrc<'a> {
    Mat { a: &'a [f32], trans: bool },
    Packed(&'a PackedWeights),
}

/// The B operand: a raw matrix (with optional transpose) or the virtual
/// `im2col` matrix of a `C×H×W` input gathered implicitly.
#[derive(Clone, Copy)]
enum BSrc<'a> {
    Mat { b: &'a [f32], trans: bool },
    Conv { src: &'a [f32], geom: &'a ConvGeom },
}

/// The portable register microkernel: one `MR×NR` accumulator tile over a
/// shared inner extent. `apanel` is `kc` steps of `MR` packed A values,
/// `bpanel` `kc` steps of `NR` packed B values; the fixed-size accumulator
/// array and `as_chunks` iteration make the loop body branch- and
/// bounds-check free. Its per-element semantics — `acc[c] += a * b[c]`, two
/// roundings per step, `k`-sequential — are the contract the vector
/// kernels below reproduce exactly.
#[inline(always)]
fn fma_row(acc: &mut [f32; NR], a: f32, b: &[f32; NR]) {
    for c in 0..NR {
        acc[c] += a * b[c];
    }
}

#[inline(always)]
fn microkernel_portable(apanel: &[f32], bpanel: &[f32]) -> [[f32; NR]; MR] {
    let mut r0 = [0.0f32; NR];
    let mut r1 = [0.0f32; NR];
    let mut r2 = [0.0f32; NR];
    let mut r3 = [0.0f32; NR];
    let mut r4 = [0.0f32; NR];
    let mut r5 = [0.0f32; NR];
    let mut r6 = [0.0f32; NR];
    let mut r7 = [0.0f32; NR];
    let (asteps, _) = apanel.as_chunks::<MR>();
    let (bsteps, _) = bpanel.as_chunks::<NR>();
    for (ap, b) in asteps.iter().zip(bsteps.iter()) {
        fma_row(&mut r0, ap[0], b);
        fma_row(&mut r1, ap[1], b);
        fma_row(&mut r2, ap[2], b);
        fma_row(&mut r3, ap[3], b);
        fma_row(&mut r4, ap[4], b);
        fma_row(&mut r5, ap[5], b);
        fma_row(&mut r6, ap[6], b);
        fma_row(&mut r7, ap[7], b);
    }
    [r0, r1, r2, r3, r4, r5, r6, r7]
}

#[cfg(all(target_arch = "x86_64", target_feature = "avx2"))]
mod avx2 {
    //! The AVX2 mul+add register microkernel.
    //!
    //! Everything here uses the *safe* `#[target_feature]` intrinsics of
    //! Rust ≥ 1.87: no raw pointer ever appears. Vector loads are
    //! assembled with `_mm256_set_ps` from bounds-checked slices (LLVM
    //! folds the lane construction into a single 32-byte load) and stores
    //! go through per-lane extracts, which fold likewise.
    //!
    //! The `8×16` tile needs 16 ymm accumulators — the whole AVX2 register
    //! file — so the kernel runs two passes of four rows each. Rows
    //! accumulate independently, so splitting the row loop leaves every
    //! output element's `k`-order untouched and the result stays
    //! bit-identical to the portable kernel.

    use super::{MR, NR};
    use core::arch::x86_64::{
        __m256, _mm256_add_ps, _mm256_castps_si256, _mm256_extract_epi32, _mm256_mul_ps,
        _mm256_set1_ps, _mm256_set_ps, _mm256_setzero_ps,
    };

    #[target_feature(enable = "avx2")]
    #[inline]
    fn load_ymm(w: &[f32; 8]) -> __m256 {
        _mm256_set_ps(w[7], w[6], w[5], w[4], w[3], w[2], w[1], w[0])
    }

    #[target_feature(enable = "avx2")]
    #[inline]
    fn store_ymm(v: __m256, out: &mut [f32; 8]) {
        let vi = _mm256_castps_si256(v);
        out[0] = f32::from_bits(_mm256_extract_epi32::<0>(vi) as u32);
        out[1] = f32::from_bits(_mm256_extract_epi32::<1>(vi) as u32);
        out[2] = f32::from_bits(_mm256_extract_epi32::<2>(vi) as u32);
        out[3] = f32::from_bits(_mm256_extract_epi32::<3>(vi) as u32);
        out[4] = f32::from_bits(_mm256_extract_epi32::<4>(vi) as u32);
        out[5] = f32::from_bits(_mm256_extract_epi32::<5>(vi) as u32);
        out[6] = f32::from_bits(_mm256_extract_epi32::<6>(vi) as u32);
        out[7] = f32::from_bits(_mm256_extract_epi32::<7>(vi) as u32);
    }

    /// Two half-tiles of `4×NR`: per step, broadcast one A value per row
    /// and issue separate `vmulps`/`vaddps` against the two 8-lane B
    /// halves — never `vfmadd`, preserving the scalar two-roundings-per-
    /// step semantics.
    #[target_feature(enable = "avx2")]
    #[inline]
    pub(super) fn microkernel(apanel: &[f32], bpanel: &[f32], out: &mut [[f32; NR]; MR]) {
        let (asteps, _) = apanel.as_chunks::<MR>();
        let (bsteps, _) = bpanel.as_chunks::<NR>();
        for half in 0..2 {
            let r0 = half * 4;
            let mut acc = [[_mm256_setzero_ps(); 2]; 4];
            for (ap, bp) in asteps.iter().zip(bsteps.iter()) {
                let b0 = load_ymm(bp[0..8].try_into().expect("8-lane half"));
                let b1 = load_ymm(bp[8..16].try_into().expect("8-lane half"));
                for (r, acc_r) in acc.iter_mut().enumerate() {
                    let a = _mm256_set1_ps(ap[r0 + r]);
                    acc_r[0] = _mm256_add_ps(acc_r[0], _mm256_mul_ps(a, b0));
                    acc_r[1] = _mm256_add_ps(acc_r[1], _mm256_mul_ps(a, b1));
                }
            }
            for (r, acc_r) in acc.iter().enumerate() {
                let out_r = &mut out[r0 + r];
                store_ymm(acc_r[0], (&mut out_r[0..8]).try_into().expect("half"));
                store_ymm(acc_r[1], (&mut out_r[8..16]).try_into().expect("half"));
            }
        }
    }
}

#[cfg(all(target_arch = "x86_64", target_feature = "avx512f"))]
mod avx512 {
    //! The AVX-512 mul+add register microkernel: the full `8×16` tile in
    //! eight zmm accumulators, one 16-lane B vector per step. Same safe
    //! `#[target_feature]` intrinsics discipline as the AVX2 kernel; f32
    //! lanes are stored through integer extracts (`castps` + epi32
    //! extract + `from_bits`) because no direct f32 lane extract exists.

    use super::{MR, NR};
    use core::arch::x86_64::{
        __m256i, __m512, _mm256_extract_epi32, _mm512_add_ps, _mm512_castps_si512,
        _mm512_extracti64x4_epi64, _mm512_mul_ps, _mm512_set1_ps, _mm512_set_ps, _mm512_setzero_ps,
    };

    #[target_feature(enable = "avx512f")]
    #[inline]
    fn load_zmm(w: &[f32; 16]) -> __m512 {
        _mm512_set_ps(
            w[15], w[14], w[13], w[12], w[11], w[10], w[9], w[8], w[7], w[6], w[5], w[4], w[3],
            w[2], w[1], w[0],
        )
    }

    #[target_feature(enable = "avx512f")]
    #[inline]
    fn store_zmm(v: __m512, out: &mut [f32; 16]) {
        let vi = _mm512_castps_si512(v);
        let lo: __m256i = _mm512_extracti64x4_epi64::<0>(vi);
        let hi: __m256i = _mm512_extracti64x4_epi64::<1>(vi);
        out[0] = f32::from_bits(_mm256_extract_epi32::<0>(lo) as u32);
        out[1] = f32::from_bits(_mm256_extract_epi32::<1>(lo) as u32);
        out[2] = f32::from_bits(_mm256_extract_epi32::<2>(lo) as u32);
        out[3] = f32::from_bits(_mm256_extract_epi32::<3>(lo) as u32);
        out[4] = f32::from_bits(_mm256_extract_epi32::<4>(lo) as u32);
        out[5] = f32::from_bits(_mm256_extract_epi32::<5>(lo) as u32);
        out[6] = f32::from_bits(_mm256_extract_epi32::<6>(lo) as u32);
        out[7] = f32::from_bits(_mm256_extract_epi32::<7>(lo) as u32);
        out[8] = f32::from_bits(_mm256_extract_epi32::<0>(hi) as u32);
        out[9] = f32::from_bits(_mm256_extract_epi32::<1>(hi) as u32);
        out[10] = f32::from_bits(_mm256_extract_epi32::<2>(hi) as u32);
        out[11] = f32::from_bits(_mm256_extract_epi32::<3>(hi) as u32);
        out[12] = f32::from_bits(_mm256_extract_epi32::<4>(hi) as u32);
        out[13] = f32::from_bits(_mm256_extract_epi32::<5>(hi) as u32);
        out[14] = f32::from_bits(_mm256_extract_epi32::<6>(hi) as u32);
        out[15] = f32::from_bits(_mm256_extract_epi32::<7>(hi) as u32);
    }

    /// Per step: one 64-byte B load, eight broadcasts, eight separate
    /// `vmulps`+`vaddps` pairs — the exact instruction shape the scalar
    /// kernel's semantics require (no FMA contraction).
    #[target_feature(enable = "avx512f")]
    #[inline]
    pub(super) fn microkernel(apanel: &[f32], bpanel: &[f32], out: &mut [[f32; NR]; MR]) {
        let mut acc = [_mm512_setzero_ps(); MR];
        let (asteps, _) = apanel.as_chunks::<MR>();
        let (bsteps, _) = bpanel.as_chunks::<NR>();
        for (ap, bp) in asteps.iter().zip(bsteps.iter()) {
            let b = load_zmm(bp);
            for (r, acc_r) in acc.iter_mut().enumerate() {
                let a = _mm512_set1_ps(ap[r]);
                *acc_r = _mm512_add_ps(*acc_r, _mm512_mul_ps(a, b));
            }
        }
        for (acc_r, out_r) in acc.iter().zip(out.iter_mut()) {
            store_zmm(*acc_r, out_r);
        }
    }
}

/// Runs one `MR×NR` tile at the requested [`SimdLevel`]. Levels the build
/// does not carry fall through to the next narrower compiled kernel; all
/// levels produce bit-identical tiles, so the fallback is a pure
/// performance matter.
#[inline(always)]
fn microkernel(level: SimdLevel, apanel: &[f32], bpanel: &[f32]) -> [[f32; NR]; MR] {
    #[cfg(all(target_arch = "x86_64", target_feature = "avx512f"))]
    #[allow(unsafe_code)]
    if level == SimdLevel::Avx512 {
        let mut out = [[0.0f32; NR]; MR];
        // SAFETY: this arm only compiles when the build configuration
        // statically enables avx512f (see the cfg gate), so the ISA is
        // guaranteed present on every machine the binary targets; the
        // callee touches memory only through safe bounds-checked slices.
        unsafe { avx512::microkernel(apanel, bpanel, &mut out) };
        return out;
    }
    #[cfg(all(target_arch = "x86_64", target_feature = "avx2"))]
    #[allow(unsafe_code)]
    if level >= SimdLevel::Avx2 {
        let mut out = [[0.0f32; NR]; MR];
        // SAFETY: as above — avx2 is statically enabled whenever this arm
        // compiles, and the callee uses only bounds-checked slices.
        unsafe { avx2::microkernel(apanel, bpanel, &mut out) };
        return out;
    }
    let _ = level;
    microkernel_portable(apanel, bpanel)
}

/// Computes one output row band (`band_m` rows starting at global row
/// `row0`) against the shared packed B panel. Raw-matrix A blocks are
/// packed into the worker-private `apack` scratch; pre-packed A serves
/// panels straight from its shared buffer. `out_band` is the band's
/// row-major slice of the full output (width `n`); contributions are
/// accumulated so the `KC`-blocked outer loop can sum partial products.
#[allow(clippy::too_many_arguments)]
fn compute_band(
    level: SimdLevel,
    asrc: ASrc<'_>,
    m: usize,
    k: usize,
    n: usize,
    bpack: &[f32],
    apack: &mut [f32],
    out_band: &mut [f32],
    row0: usize,
    band_m: usize,
    jc: usize,
    nc: usize,
    pc: usize,
    kc: usize,
) {
    let col_panels = nc.div_ceil(NR);
    let mut ic = 0usize;
    while ic < band_m {
        let mc = MC.min(band_m - ic);
        let ablock: &[f32] = match asrc {
            ASrc::Mat { a, trans } => {
                pack_a_block(a, trans, m, k, row0 + ic, mc, pc, kc, apack);
                apack
            }
            // Band and MC boundaries are MR-aligned, so the pre-packed
            // panels for these rows are bit-identical to what
            // pack_a_block would have produced (see PackedWeights).
            ASrc::Packed(pw) => pw.block_panels(row0 + ic, pc, kc),
        };
        let row_panels = mc.div_ceil(MR);
        // Col-panel outer / row-panel inner keeps the `KC×NR` B slice hot in
        // L1 while successive A panels stream from the packed L2 block.
        for pj in 0..col_panels {
            let bpanel = &bpack[pj * NR * kc..][..NR * kc];
            for pi in 0..row_panels {
                let apanel = &ablock[pi * MR * kc..][..MR * kc];
                let rows = MR.min(mc - pi * MR);
                let acc = microkernel(level, apanel, bpanel);
                let cols = NR.min(nc - pj * NR);
                for (r, acc_row) in acc.iter().enumerate().take(rows) {
                    let base = (ic + pi * MR + r) * n + jc + pj * NR;
                    for (dst, &v) in out_band[base..base + cols].iter_mut().zip(acc_row.iter()) {
                        *dst += v;
                    }
                }
            }
        }
        ic += mc;
    }
}

/// The shared blocked driver behind every public entry point: packs B
/// panels (explicit matrix or implicit conv gather), then computes output
/// row bands serially or across scoped worker threads.
#[allow(clippy::too_many_arguments)]
fn gemm_driver(
    packs: &mut PackBuffers,
    level: SimdLevel,
    asrc: ASrc<'_>,
    bsrc: BSrc<'_>,
    out: &mut [f32],
    m: usize,
    n: usize,
    k: usize,
    threads: usize,
) {
    out.fill(0.0);
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    let level = level.clamp_available();
    let flops = 2usize.saturating_mul(m).saturating_mul(n).saturating_mul(k);
    let threads = if flops < PARALLEL_FLOP_THRESHOLD {
        1
    } else {
        threads.clamp(1, m.div_ceil(MR))
    };

    let mut jc = 0usize;
    while jc < n {
        let nc = NC.min(n - jc);
        let mut pc = 0usize;
        while pc < k {
            let kc = KC.min(k - pc);
            let bpack = ensure_len(&mut packs.b, nc.div_ceil(NR) * NR * kc);
            match bsrc {
                BSrc::Mat { b, trans } => pack_b_panel(b, trans, n, k, jc, nc, pc, kc, bpack),
                BSrc::Conv { src, geom } => pack_b_conv_panel(src, geom, jc, nc, pc, kc, bpack),
            }
            if threads == 1 {
                let apack = ensure_len(&mut packs.a, MC * KC);
                compute_band(
                    level, asrc, m, k, n, bpack, apack, out, 0, m, jc, nc, pc, kc,
                );
            } else {
                // One MR-aligned row band per worker; each worker packs A
                // into its private region and owns its band of `out`, so the
                // packed B panel is the only shared (read-only) state.
                let band_rows = m.div_ceil(threads).div_ceil(MR) * MR;
                let apack_all = ensure_len(&mut packs.a, threads * MC * KC);
                let bpack: &[f32] = bpack;
                crossbeam::thread::scope(|scope| {
                    let handles: Vec<_> = out
                        .chunks_mut(band_rows * n)
                        .zip(apack_all.chunks_mut(MC * KC))
                        .enumerate()
                        .map(|(t, (out_band, apack))| {
                            scope.spawn(move |_| {
                                let band_m = out_band.len() / n;
                                compute_band(
                                    level,
                                    asrc,
                                    m,
                                    k,
                                    n,
                                    bpack,
                                    apack,
                                    out_band,
                                    t * band_rows,
                                    band_m,
                                    jc,
                                    nc,
                                    pc,
                                    kc,
                                );
                            })
                        })
                        .collect();
                    for h in handles {
                        h.join().expect("gemm worker panicked");
                    }
                })
                .expect("gemm thread scope");
            }
            pc += kc;
        }
        jc += nc;
    }
}

/// Computes `out = op(A) · op(B)` over raw row-major slices.
///
/// `op(X)` is `X` or `Xᵀ` per the transpose flags; `m`, `n`, `k` are the
/// *logical* dimensions of the product (`op(A)` is `m×k`, `op(B)` is `k×n`).
/// `out` is fully overwritten. Packing scratch comes from `packs` and is
/// only ever grown, so steady-state calls at a fixed shape allocate
/// nothing. `threads` bounds worker parallelism over output row bands;
/// small products ignore it and run serially. The microkernel runs at
/// [`SimdLevel::auto`]; results are identical at every level.
///
/// # Panics
///
/// Panics if a slice length disagrees with the stated dimensions.
#[allow(clippy::too_many_arguments)]
pub fn gemm_into(
    packs: &mut PackBuffers,
    trans_a: bool,
    trans_b: bool,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    n: usize,
    k: usize,
    threads: usize,
) {
    gemm_into_level(
        packs,
        SimdLevel::auto(),
        trans_a,
        trans_b,
        a,
        b,
        out,
        m,
        n,
        k,
        threads,
    );
}

/// [`gemm_into`] with an explicit microkernel [`SimdLevel`] — the forced-
/// dispatch entry point used by equivalence tests and benchmarks (and by
/// the executor's `simd` knob). Levels beyond what the build carries are
/// clamped down; the result is bit-identical at every level regardless.
///
/// # Panics
///
/// Panics if a slice length disagrees with the stated dimensions.
#[allow(clippy::too_many_arguments)]
pub fn gemm_into_level(
    packs: &mut PackBuffers,
    level: SimdLevel,
    trans_a: bool,
    trans_b: bool,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    n: usize,
    k: usize,
    threads: usize,
) {
    assert_eq!(a.len(), m * k, "operand A length vs {m}x{k}");
    assert_eq!(b.len(), k * n, "operand B length vs {k}x{n}");
    assert_eq!(out.len(), m * n, "output length vs {m}x{n}");
    gemm_driver(
        packs,
        level,
        ASrc::Mat { a, trans: trans_a },
        BSrc::Mat { b, trans: trans_b },
        out,
        m,
        n,
        k,
        threads,
    );
}

/// Implicit-GEMM convolution: `out = W · im2col(input)` without ever
/// materializing the `im2col` matrix — the B packer gathers receptive-field
/// taps (zeros in the padding border) straight from the `C×H×W` input.
///
/// `weights` is the `(out_c × patch_len)` filter matrix, `input` the
/// `C×H×W` tensor data per `geom`, `out` the `(out_c × out_positions)`
/// result. Bit-identical to `im2col_into` + [`gemm_into`] at every
/// geometry, level, and thread count.
///
/// # Panics
///
/// Panics if a slice length disagrees with `geom`/`out_c`.
#[allow(clippy::too_many_arguments)]
pub fn conv_gemm_into(
    packs: &mut PackBuffers,
    level: SimdLevel,
    weights: &[f32],
    input: &[f32],
    geom: &ConvGeom,
    out: &mut [f32],
    out_c: usize,
    threads: usize,
) {
    let (k, n) = (geom.patch_len(), geom.out_positions());
    assert_eq!(weights.len(), out_c * k, "weights length vs {out_c}x{k}");
    assert_eq!(
        input.len(),
        geom.in_c() * geom.in_h() * geom.in_w(),
        "input length vs conv geometry"
    );
    assert_eq!(out.len(), out_c * n, "output length vs {out_c}x{n}");
    gemm_driver(
        packs,
        level,
        ASrc::Mat {
            a: weights,
            trans: false,
        },
        BSrc::Conv { src: input, geom },
        out,
        out_c,
        n,
        k,
        threads,
    );
}

/// [`conv_gemm_into`] over weights pre-packed once with
/// [`PackedWeights::pack`]: the per-frame A packing pass disappears and
/// the packed panels are shared read-only across threads and frames.
/// Bit-identical to the unpacked path by panel-layout construction.
///
/// # Panics
///
/// Panics if `input`/`out` lengths disagree with `geom`/`weights`, or if
/// the packed inner extent does not match `geom.patch_len()`.
pub fn conv_gemm_packed_into(
    packs: &mut PackBuffers,
    level: SimdLevel,
    weights: &PackedWeights,
    input: &[f32],
    geom: &ConvGeom,
    out: &mut [f32],
    threads: usize,
) {
    let (m, k, n) = (weights.m(), geom.patch_len(), geom.out_positions());
    assert_eq!(
        weights.k(),
        k,
        "packed weights inner extent vs patch length"
    );
    assert_eq!(
        input.len(),
        geom.in_c() * geom.in_h() * geom.in_w(),
        "input length vs conv geometry"
    );
    assert_eq!(out.len(), m * n, "output length vs {m}x{n}");
    gemm_driver(
        packs,
        level,
        ASrc::Packed(weights),
        BSrc::Conv { src: input, geom },
        out,
        m,
        n,
        k,
        threads,
    );
}

/// Computes `op(A) · op(B)` over rank-2 tensors through the packed engine.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] if either operand is not rank-2 and
/// [`TensorError::InnerDimMismatch`] if the inner dimensions disagree after
/// applying the transpose flags.
///
/// # Example
///
/// ```
/// use redeye_tensor::{gemm, Tensor, Workspace};
///
/// # fn main() -> Result<(), redeye_tensor::TensorError> {
/// let mut ws = Workspace::new();
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3])?;
/// let b = Tensor::from_vec(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2])?;
/// let c = gemm(&mut ws, false, false, &a, &b, 1)?;
/// assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
/// # Ok(())
/// # }
/// ```
pub fn gemm(
    ws: &mut Workspace,
    trans_a: bool,
    trans_b: bool,
    a: &Tensor,
    b: &Tensor,
    threads: usize,
) -> Result<Tensor, TensorError> {
    let (ar, ac) = crate::linalg::matrix_dims(a)?;
    let (br, bc) = crate::linalg::matrix_dims(b)?;
    let (m, ka) = if trans_a { (ac, ar) } else { (ar, ac) };
    let (kb, n) = if trans_b { (bc, br) } else { (br, bc) };
    if ka != kb {
        return Err(TensorError::InnerDimMismatch {
            left_cols: ka,
            right_rows: kb,
        });
    }
    let mut out = vec![0.0f32; m * n];
    gemm_into(
        &mut ws.packs,
        trans_a,
        trans_b,
        a.as_slice(),
        b.as_slice(),
        &mut out,
        m,
        n,
        ka,
        threads,
    );
    Tensor::from_vec(out, &[m, n])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv::im2col_into;
    use crate::linalg::matmul_naive;
    use crate::Rng;

    fn random(rows: usize, cols: usize, seed: u64) -> Tensor {
        let mut rng = Rng::seed_from(seed);
        Tensor::uniform(&[rows, cols], -1.0, 1.0, &mut rng)
    }

    fn assert_close(got: &Tensor, want: &Tensor) {
        assert_eq!(got.dims(), want.dims());
        for (g, w) in got.iter().zip(want.iter()) {
            let tol = 1e-4 * w.abs().max(1.0);
            assert!((g - w).abs() <= tol, "{g} vs {w}");
        }
    }

    #[test]
    fn matches_naive_on_non_multiple_of_block_dims() {
        let mut ws = Workspace::new();
        // Dimensions straddle MR/NR/MC/KC/NC boundaries.
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 5, 7),
            (4, 8, 8),
            (65, 257, 9),
            (70, 300, 513),
        ] {
            let a = random(m, k, m as u64);
            let b = random(k, n, n as u64 + 100);
            let got = gemm(&mut ws, false, false, &a, &b, 1).unwrap();
            let want = matmul_naive(&a, &b).unwrap();
            assert_close(&got, &want);
        }
    }

    #[test]
    fn transpose_flags_match_explicit_transposes() {
        let mut ws = Workspace::new();
        let a = random(13, 9, 1);
        let b = random(13, 17, 2);
        // aᵀ(9×13) · b(13×17)
        let want = matmul_naive(&a.transpose2().unwrap(), &b).unwrap();
        let got = gemm(&mut ws, true, false, &a, &b, 1).unwrap();
        assert_close(&got, &want);
        // c(9×13) · dᵀ(13×21)
        let c = random(9, 13, 3);
        let d = random(21, 13, 4);
        let want = matmul_naive(&c, &d.transpose2().unwrap()).unwrap();
        let got = gemm(&mut ws, false, true, &c, &d, 1).unwrap();
        assert_close(&got, &want);
        // both transposed: aᵀ(9×13) · dᵀ(13×21)
        let want = matmul_naive(&a.transpose2().unwrap(), &d.transpose2().unwrap()).unwrap();
        let got = gemm(&mut ws, true, true, &a, &d, 1).unwrap();
        assert_close(&got, &want);
    }

    #[test]
    fn threaded_result_is_bit_identical_to_serial() {
        let mut ws = Workspace::new();
        let a = random(150, 80, 5);
        let b = random(80, 90, 6);
        let serial = gemm(&mut ws, false, false, &a, &b, 1).unwrap();
        for threads in [2, 3, 4, 7] {
            let parallel = gemm(&mut ws, false, false, &a, &b, threads).unwrap();
            assert_eq!(serial, parallel, "threads={threads}");
        }
    }

    #[test]
    fn every_simd_level_is_bit_identical() {
        let mut packs = PackBuffers::new();
        // Shapes straddling the microkernel edge cases, plus the 512-class
        // size where vector/portable disagreement would surface first.
        for &(m, k, n) in &[(1, 1, 1), (9, 33, 17), (70, 300, 129), (64, 512, 96)] {
            let a = random(m, k, m as u64 + 40);
            let b = random(k, n, n as u64 + 41);
            let mut want = vec![0.0f32; m * n];
            gemm_into_level(
                &mut packs,
                SimdLevel::Portable,
                false,
                false,
                a.as_slice(),
                b.as_slice(),
                &mut want,
                m,
                n,
                k,
                1,
            );
            for level in SimdLevel::available_levels() {
                for threads in [1usize, 3] {
                    let mut got = vec![0.0f32; m * n];
                    gemm_into_level(
                        &mut packs,
                        level,
                        false,
                        false,
                        a.as_slice(),
                        b.as_slice(),
                        &mut got,
                        m,
                        n,
                        k,
                        threads,
                    );
                    assert!(
                        got.iter()
                            .zip(&want)
                            .all(|(g, w)| g.to_bits() == w.to_bits()),
                        "level {level} threads {threads} diverged at {m}x{k}x{n}"
                    );
                }
            }
        }
    }

    #[test]
    fn implicit_conv_matches_im2col_oracle_bitwise() {
        // MicroNet-class geometry: 3×32×32, 3×3 stride 1 pad 1.
        let geom = ConvGeom::new(3, 32, 32, 3, 3, 1, 1).unwrap();
        let out_c = 8usize;
        let mut rng = Rng::seed_from(77);
        let input = Tensor::uniform(&[3, 32, 32], -1.0, 1.0, &mut rng);
        let weights = Tensor::uniform(&[out_c, geom.patch_len()], -0.5, 0.5, &mut rng);
        let (k, n) = (geom.patch_len(), geom.out_positions());

        let mut packs = PackBuffers::new();
        let mut cols = Vec::new();
        im2col_into(&input, &geom, &mut cols).unwrap();
        let mut want = vec![0.0f32; out_c * n];
        gemm_into(
            &mut packs,
            false,
            false,
            weights.as_slice(),
            &cols,
            &mut want,
            out_c,
            n,
            k,
            1,
        );

        let mut got = vec![0.0f32; out_c * n];
        conv_gemm_into(
            &mut packs,
            SimdLevel::auto(),
            weights.as_slice(),
            input.as_slice(),
            &geom,
            &mut got,
            out_c,
            1,
        );
        assert_eq!(got, want, "implicit conv diverged from im2col oracle");

        let packed = PackedWeights::pack(weights.as_slice(), out_c, k);
        let mut got_packed = vec![0.0f32; out_c * n];
        conv_gemm_packed_into(
            &mut packs,
            SimdLevel::auto(),
            &packed,
            input.as_slice(),
            &geom,
            &mut got_packed,
            1,
        );
        assert_eq!(got_packed, want, "pre-packed conv diverged from oracle");
    }

    #[test]
    fn packed_weights_report_their_footprint() {
        let w = PackedWeights::pack(&vec![1.0f32; 24 * 300], 24, 300);
        assert_eq!((w.m(), w.k()), (24, 300));
        // 24 rows → 3 MR-panels; 300 inner → blocks of 256 + 44.
        assert!(w.bytes() >= 3 * MR * 300 * std::mem::size_of::<f32>());
    }

    #[test]
    fn degenerate_inner_dimension_yields_zeros() {
        let mut ws = Workspace::new();
        let a = Tensor::zeros(&[3, 0]);
        let b = Tensor::zeros(&[0, 4]);
        let c = gemm(&mut ws, false, false, &a, &b, 4).unwrap();
        assert_eq!(c.dims(), &[3, 4]);
        assert!(c.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn inner_dim_mismatch_rejected() {
        let mut ws = Workspace::new();
        let a = random(3, 4, 7);
        let b = random(5, 6, 8);
        assert!(matches!(
            gemm(&mut ws, false, false, &a, &b, 1),
            Err(TensorError::InnerDimMismatch { .. })
        ));
        // With trans_a the inner dim becomes 3, still != 5.
        assert!(gemm(&mut ws, true, false, &a, &b, 1).is_err());
    }

    #[test]
    fn workspace_buffers_stable_across_repeated_calls() {
        let mut ws = Workspace::new();
        let a = random(70, 300, 9);
        let b = random(300, 120, 10);
        // First call grows the scratch to its high-water mark.
        gemm(&mut ws, false, false, &a, &b, 2).unwrap();
        let before = ws.stats();
        for _ in 0..3 {
            gemm(&mut ws, false, false, &a, &b, 2).unwrap();
        }
        assert_eq!(before, ws.stats(), "pack buffers must not reallocate");
    }
}
