//! Runtime SIMD dispatch policy for the f32 GEMM microkernel.
//!
//! The f32 engine ships three microkernel variants — portable scalar-order
//! Rust, AVX2 and AVX-512 — that are *bit-identical by construction*: the
//! vector kernels are lane-parallel over the `NR` output columns and use
//! separate multiply and add instructions (no FMA contraction), so every
//! output element accumulates its `k` products in exactly the scalar
//! program order with one rounding per multiply and one per add. Picking a
//! level is therefore purely a performance decision; results never change.
//!
//! The active level resolves once per process from the `REDEYE_SIMD`
//! environment variable (`auto`, `portable`, `avx2`, `avx512`;
//! case-insensitive) clamped to what the build actually compiled in: the
//! vector kernels only exist when the corresponding `target_feature` is
//! statically enabled (e.g. `-C target-cpu=native` on an AVX-512 host), so
//! requesting a level the binary does not carry degrades to the best
//! compiled level below it rather than failing. Tests that must pin a level
//! without racing on the process environment bypass [`SimdLevel::auto`] and
//! pass an explicit level to the `*_level` GEMM entry points.

use std::sync::OnceLock;

/// A f32 microkernel implementation level, ordered by ISA width.
///
/// All levels produce bit-identical results (see the module docs); the
/// enum exists so benchmarks and equivalence tests can force a specific
/// kernel in-process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SimdLevel {
    /// Scalar-order safe Rust; the reference semantics, always available.
    Portable,
    /// 256-bit mul+add lanes (requires a build with `avx2` enabled).
    Avx2,
    /// 512-bit mul+add lanes (requires a build with `avx512f` enabled).
    Avx512,
}

impl SimdLevel {
    /// The widest level this *build* carries kernels for.
    ///
    /// Vector kernels are compiled only under static `target_feature`
    /// gates, so availability is a compile-time fact, not a runtime probe.
    pub fn best_available() -> SimdLevel {
        #[cfg(all(target_arch = "x86_64", target_feature = "avx512f"))]
        {
            SimdLevel::Avx512
        }
        #[cfg(all(
            target_arch = "x86_64",
            target_feature = "avx2",
            not(target_feature = "avx512f")
        ))]
        {
            SimdLevel::Avx2
        }
        #[cfg(not(all(target_arch = "x86_64", target_feature = "avx2")))]
        {
            SimdLevel::Portable
        }
    }

    /// Whether this build carries a kernel for `self`.
    pub fn is_available(self) -> bool {
        self <= Self::best_available()
    }

    /// Parses a `REDEYE_SIMD` value; `None` for `auto`/unknown.
    fn parse(s: &str) -> Option<SimdLevel> {
        match s.to_ascii_lowercase().as_str() {
            "portable" | "scalar" => Some(SimdLevel::Portable),
            "avx2" => Some(SimdLevel::Avx2),
            "avx512" => Some(SimdLevel::Avx512),
            _ => None,
        }
    }

    /// The process-wide default level: `REDEYE_SIMD` if set (clamped to
    /// what the build compiled in), else [`SimdLevel::best_available`].
    ///
    /// Resolved once and cached; the environment is not re-read. Code that
    /// needs per-call control (tests, benchmarks, the executor's
    /// `set_simd_level` knob) passes an explicit level instead.
    pub fn auto() -> SimdLevel {
        static AUTO: OnceLock<SimdLevel> = OnceLock::new();
        *AUTO.get_or_init(|| {
            match std::env::var("REDEYE_SIMD") {
                Ok(v) if v.eq_ignore_ascii_case("auto") || v.is_empty() => Self::best_available(),
                Ok(v) => match Self::parse(&v) {
                    // Requesting wider than the build carries degrades to
                    // the widest compiled level (never silently upgrades).
                    Some(level) => level.min(Self::best_available()),
                    None => {
                        eprintln!(
                            "REDEYE_SIMD={v:?} not recognized (want auto|portable|avx2|avx512); \
                             using auto"
                        );
                        Self::best_available()
                    }
                },
                Err(_) => Self::best_available(),
            }
        })
    }

    /// Clamps an arbitrary requested level to one this build can run.
    pub fn clamp_available(self) -> SimdLevel {
        self.min(Self::best_available())
    }

    /// All levels this build can run, narrowest first — the sweep domain
    /// for equivalence tests and the `simd_vs_portable` benchmarks.
    pub fn available_levels() -> Vec<SimdLevel> {
        [SimdLevel::Portable, SimdLevel::Avx2, SimdLevel::Avx512]
            .into_iter()
            .filter(|l| l.is_available())
            .collect()
    }
}

impl std::fmt::Display for SimdLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimdLevel::Portable => write!(f, "portable"),
            SimdLevel::Avx2 => write!(f, "avx2"),
            SimdLevel::Avx512 => write!(f, "avx512"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_reflects_isa_width() {
        assert!(SimdLevel::Portable < SimdLevel::Avx2);
        assert!(SimdLevel::Avx2 < SimdLevel::Avx512);
    }

    #[test]
    fn portable_is_always_available() {
        assert!(SimdLevel::Portable.is_available());
        assert!(SimdLevel::available_levels().contains(&SimdLevel::Portable));
    }

    #[test]
    fn clamp_never_exceeds_build() {
        for level in [SimdLevel::Portable, SimdLevel::Avx2, SimdLevel::Avx512] {
            assert!(level.clamp_available() <= SimdLevel::best_available());
        }
    }

    #[test]
    fn parse_accepts_knob_spellings() {
        assert_eq!(SimdLevel::parse("AVX2"), Some(SimdLevel::Avx2));
        assert_eq!(SimdLevel::parse("avx512"), Some(SimdLevel::Avx512));
        assert_eq!(SimdLevel::parse("Portable"), Some(SimdLevel::Portable));
        assert_eq!(SimdLevel::parse("scalar"), Some(SimdLevel::Portable));
        assert_eq!(SimdLevel::parse("neon"), None);
    }

    #[test]
    fn available_levels_is_a_prefix_of_the_ordering() {
        let levels = SimdLevel::available_levels();
        let mut sorted = levels.clone();
        sorted.sort();
        assert_eq!(levels, sorted);
        assert_eq!(levels.last().copied(), Some(SimdLevel::best_available()));
    }
}
