//! Error type for tensor operations.

use std::fmt;

/// Error returned by fallible tensor operations.
///
/// Every variant carries enough context to diagnose the failing call without
/// a debugger: the offending shapes or indices are embedded in the error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The number of elements implied by a shape does not match the data
    /// length supplied.
    LengthMismatch {
        /// Elements implied by the requested shape.
        expected: usize,
        /// Elements actually provided.
        actual: usize,
    },
    /// Two tensors that must have identical shapes do not.
    ShapeMismatch {
        /// Shape of the left-hand operand.
        left: Vec<usize>,
        /// Shape of the right-hand operand.
        right: Vec<usize>,
    },
    /// A tensor did not have the rank an operation requires.
    RankMismatch {
        /// Rank required by the operation.
        expected: usize,
        /// Rank of the tensor supplied.
        actual: usize,
    },
    /// Inner dimensions of a matrix product disagree.
    InnerDimMismatch {
        /// Columns of the left matrix.
        left_cols: usize,
        /// Rows of the right matrix.
        right_rows: usize,
    },
    /// An index was outside the tensor bounds.
    IndexOutOfBounds {
        /// The multi-dimensional index requested.
        index: Vec<usize>,
        /// The tensor shape.
        shape: Vec<usize>,
    },
    /// A geometry parameter (stride, kernel, pad) was invalid for the input.
    InvalidGeometry {
        /// Human-readable description of the violated constraint.
        reason: String,
    },
    /// An operation that requires a non-empty tensor received an empty one.
    Empty,
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::LengthMismatch { expected, actual } => write!(
                f,
                "data length {actual} does not match shape volume {expected}"
            ),
            TensorError::ShapeMismatch { left, right } => {
                write!(f, "shape mismatch: {left:?} vs {right:?}")
            }
            TensorError::RankMismatch { expected, actual } => {
                write!(f, "rank mismatch: expected rank {expected}, got {actual}")
            }
            TensorError::InnerDimMismatch {
                left_cols,
                right_rows,
            } => write!(
                f,
                "matrix inner dimensions disagree: {left_cols} vs {right_rows}"
            ),
            TensorError::IndexOutOfBounds { index, shape } => {
                write!(f, "index {index:?} out of bounds for shape {shape:?}")
            }
            TensorError::InvalidGeometry { reason } => {
                write!(f, "invalid geometry: {reason}")
            }
            TensorError::Empty => write!(f, "operation requires a non-empty tensor"),
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = TensorError::ShapeMismatch {
            left: vec![2, 3],
            right: vec![3, 2],
        };
        let text = err.to_string();
        assert!(text.contains("[2, 3]"));
        assert!(text.contains("[3, 2]"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }

    #[test]
    fn errors_compare_equal() {
        assert_eq!(TensorError::Empty, TensorError::Empty);
        assert_ne!(
            TensorError::Empty,
            TensorError::LengthMismatch {
                expected: 1,
                actual: 2
            }
        );
    }
}
