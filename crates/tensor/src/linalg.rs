//! Dense matrix products used by the ConvNet framework.
//!
//! Convolutions lower to matrix multiplication via `im2col`, so these three
//! entry points (plain, transpose-A, transpose-B) carry essentially all of
//! the arithmetic in the digital reference path. All three delegate to the
//! packed cache-blocked engine in [`crate::gemm`] — the transpose variants
//! are absorbed by the pack step's gather, not separate loops — using a
//! thread-local [`Workspace`] so repeated calls at a fixed shape reuse the
//! same scratch. A deliberately simple [`matmul_naive`] reference is
//! retained for equivalence testing and benchmarking.

use crate::workspace::Workspace;
use crate::{gemm, Tensor, TensorError};
use std::cell::RefCell;

thread_local! {
    /// Scratch for the drop-in `matmul*` wrappers. Layers and executors that
    /// own a [`Workspace`] call [`gemm`]/[`crate::gemm_into`] directly; this
    /// keeps the plain functional API allocation-free in steady state too.
    static LOCAL_WS: RefCell<Workspace> = RefCell::new(Workspace::new());
}

pub(crate) fn matrix_dims(t: &Tensor) -> Result<(usize, usize), TensorError> {
    match t.dims() {
        [r, c] => Ok((*r, *c)),
        dims => Err(TensorError::RankMismatch {
            expected: 2,
            actual: dims.len(),
        }),
    }
}

/// Computes the matrix product `a (m×k) · b (k×n) → (m×n)`.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] if either operand is not rank-2 and
/// [`TensorError::InnerDimMismatch`] if `a`'s columns differ from `b`'s rows.
///
/// # Example
///
/// ```
/// use redeye_tensor::{matmul, Tensor};
///
/// # fn main() -> Result<(), redeye_tensor::TensorError> {
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
/// let i = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2])?;
/// assert_eq!(matmul(&a, &i)?, a);
/// # Ok(())
/// # }
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    LOCAL_WS.with(|ws| gemm(&mut ws.borrow_mut(), false, false, a, b, 1))
}

/// Computes `aᵀ (k×m)ᵀ · b (k×n) → (m×n)` without materializing `aᵀ`.
///
/// Used by the convolution *backward* pass (gradient w.r.t. inputs).
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] or [`TensorError::InnerDimMismatch`]
/// under the same conditions as [`matmul`].
pub fn matmul_transpose_a(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    LOCAL_WS.with(|ws| gemm(&mut ws.borrow_mut(), true, false, a, b, 1))
}

/// Computes `a (m×k) · bᵀ (n×k)ᵀ → (m×n)` without materializing `bᵀ`.
///
/// Used by the convolution backward pass (gradient w.r.t. weights).
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] or [`TensorError::InnerDimMismatch`]
/// under the same conditions as [`matmul`].
pub fn matmul_transpose_b(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    LOCAL_WS.with(|ws| gemm(&mut ws.borrow_mut(), false, true, a, b, 1))
}

/// The retained naive reference product: a cache-aware ikj triple loop with
/// no packing, no blocking, and no threading.
///
/// This is the oracle the packed engine is property-tested against, and the
/// baseline the benchmark suite measures speedups over. It is not used on
/// any hot path.
///
/// # Errors
///
/// Same conditions as [`matmul`].
pub fn matmul_naive(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    let (m, k) = matrix_dims(a)?;
    let (k2, n) = matrix_dims(b)?;
    if k != k2 {
        return Err(TensorError::InnerDimMismatch {
            left_cols: k,
            right_rows: k2,
        });
    }
    let mut out = vec![0.0f32; m * n];
    let a_data = a.as_slice();
    let b_data = b.as_slice();
    for i in 0..m {
        let a_row = &a_data[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        for (p, &a_ip) in a_row.iter().enumerate() {
            if a_ip == 0.0 {
                continue;
            }
            let b_row = &b_data[p * n..(p + 1) * n];
            for (o, &b_pj) in out_row.iter_mut().zip(b_row.iter()) {
                *o += a_ip * b_pj;
            }
        }
    }
    Tensor::from_vec(out, &[m, n])
}

impl Tensor {
    /// Transposes a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] if the tensor is not rank-2.
    pub fn transpose2(&self) -> Result<Tensor, TensorError> {
        let (r, c) = matrix_dims(self)?;
        let src = self.as_slice();
        let mut out = vec![0.0f32; r * c];
        for i in 0..r {
            for j in 0..c {
                out[j * r + i] = src[i * c + j];
            }
        }
        Tensor::from_vec(out, &[c, r])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: usize, cols: usize, data: &[f32]) -> Tensor {
        Tensor::from_vec(data.to_vec(), &[rows, cols]).unwrap()
    }

    #[test]
    fn matmul_basic() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.dims(), &[2, 2]);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = m(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let i = m(2, 2, &[1.0, 0.0, 0.0, 1.0]);
        assert_eq!(matmul(&a, &i).unwrap(), a);
        assert_eq!(matmul(&i, &a).unwrap(), a);
    }

    #[test]
    fn matmul_rejects_bad_dims() {
        let a = m(2, 3, &[0.0; 6]);
        let b = m(2, 3, &[0.0; 6]);
        assert!(matches!(
            matmul(&a, &b),
            Err(TensorError::InnerDimMismatch { .. })
        ));
        let v = Tensor::zeros(&[3]);
        assert!(matmul(&v, &b).is_err());
    }

    #[test]
    fn matmul_matches_naive_reference() {
        let mut rng = crate::Rng::seed_from(3);
        let a = Tensor::uniform(&[17, 33], -1.0, 1.0, &mut rng);
        let b = Tensor::uniform(&[33, 29], -1.0, 1.0, &mut rng);
        let packed = matmul(&a, &b).unwrap();
        let naive = matmul_naive(&a, &b).unwrap();
        for (p, n) in packed.iter().zip(naive.iter()) {
            assert!((p - n).abs() <= 1e-4 * n.abs().max(1.0), "{p} vs {n}");
        }
    }

    #[test]
    fn transpose_variants_agree_with_explicit_transpose() {
        let a = m(3, 2, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(3, 4, &(0..12).map(|v| v as f32).collect::<Vec<_>>());
        // matmul_transpose_a(a, b) == matmul(aᵀ, b)
        let expect = matmul(&a.transpose2().unwrap(), &b).unwrap();
        assert_eq!(matmul_transpose_a(&a, &b).unwrap(), expect);

        let c = m(2, 3, &[1.0, 0.5, -1.0, 2.0, 3.0, 1.0]);
        let d = m(4, 3, &(0..12).map(|v| v as f32 * 0.5).collect::<Vec<_>>());
        // matmul_transpose_b(c, d) == matmul(c, dᵀ)
        let expect = matmul(&c, &d.transpose2().unwrap()).unwrap();
        assert_eq!(matmul_transpose_b(&c, &d).unwrap(), expect);
    }

    #[test]
    fn transpose_round_trip() {
        let a = m(3, 5, &(0..15).map(|v| v as f32).collect::<Vec<_>>());
        assert_eq!(a.transpose2().unwrap().transpose2().unwrap(), a);
    }
}
