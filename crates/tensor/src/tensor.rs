//! The owned, row-major `f32` tensor.

use crate::{Rng, Shape, TensorError};
use std::fmt;

/// An owned, dense, row-major tensor of `f32` values.
///
/// `Tensor` is the single data container used throughout the RedEye
/// reproduction: images, feature maps, kernels, gradients, and analog signal
/// planes are all `Tensor`s. Data is stored contiguously in row-major order;
/// the last axis is the fastest-varying.
///
/// # Example
///
/// ```
/// use redeye_tensor::Tensor;
///
/// # fn main() -> Result<(), redeye_tensor::TensorError> {
/// let t = Tensor::from_vec((0..6).map(|v| v as f32).collect(), &[2, 3])?;
/// assert_eq!(t.at(&[1, 2])?, 5.0);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor of zeros with the given shape.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::from(dims);
        let data = vec![0.0; shape.volume()];
        Tensor { shape, data }
    }

    /// Creates a tensor filled with `value`.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::from(dims);
        let data = vec![value; shape.volume()];
        Tensor { shape, data }
    }

    /// Creates a tensor from existing data.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if `data.len()` does not equal
    /// the shape volume.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Result<Self, TensorError> {
        let shape = Shape::from(dims);
        if data.len() != shape.volume() {
            return Err(TensorError::LengthMismatch {
                expected: shape.volume(),
                actual: data.len(),
            });
        }
        Ok(Tensor { shape, data })
    }

    /// Creates a rank-0 tensor holding a single value.
    pub fn scalar(value: f32) -> Self {
        Tensor {
            shape: Shape::scalar(),
            data: vec![value],
        }
    }

    /// Creates a tensor with values drawn uniformly from `[lo, hi)`.
    pub fn uniform(dims: &[usize], lo: f32, hi: f32, rng: &mut Rng) -> Self {
        let shape = Shape::from(dims);
        let data = (0..shape.volume()).map(|_| rng.uniform(lo, hi)).collect();
        Tensor { shape, data }
    }

    /// Creates a tensor with values drawn from `N(mean, std^2)`.
    pub fn gaussian(dims: &[usize], mean: f32, std: f32, rng: &mut Rng) -> Self {
        let shape = Shape::from(dims);
        let data = (0..shape.volume())
            .map(|_| mean + std * rng.standard_normal())
            .collect();
        Tensor { shape, data }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The dimension sizes as a slice (shorthand for `shape().dims()`).
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read-only view of the underlying row-major data.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major data.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its data buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Value at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] for a bad index.
    pub fn at(&self, index: &[usize]) -> Result<f32, TensorError> {
        Ok(self.data[self.shape.offset(index)?])
    }

    /// Sets the value at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] for a bad index.
    pub fn set(&mut self, index: &[usize], value: f32) -> Result<(), TensorError> {
        let off = self.shape.offset(index)?;
        self.data[off] = value;
        Ok(())
    }

    /// Returns a tensor with the same data re-interpreted under a new shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if the volumes differ.
    pub fn reshape(&self, dims: &[usize]) -> Result<Tensor, TensorError> {
        Tensor::from_vec(self.data.clone(), dims)
    }

    /// Like [`Tensor::reshape`] but consumes `self`, avoiding a copy.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if the volumes differ.
    pub fn into_reshaped(self, dims: &[usize]) -> Result<Tensor, TensorError> {
        Tensor::from_vec(self.data, dims)
    }

    /// Iterates over elements in row-major order.
    pub fn iter(&self) -> std::slice::Iter<'_, f32> {
        self.data.iter()
    }

    /// Mutably iterates over elements in row-major order.
    pub fn iter_mut(&mut self) -> std::slice::IterMut<'_, f32> {
        self.data.iter_mut()
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const PREVIEW: usize = 8;
        write!(f, "Tensor{} [", self.shape)?;
        for (i, v) in self.data.iter().take(PREVIEW).enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        if self.data.len() > PREVIEW {
            write!(f, ", …")?;
        }
        write!(f, "]")
    }
}

impl Default for Tensor {
    fn default() -> Self {
        Tensor::zeros(&[0])
    }
}

impl<'a> IntoIterator for &'a Tensor {
    type Item = &'a f32;
    type IntoIter = std::slice::Iter<'a, f32>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_full() {
        let z = Tensor::zeros(&[2, 2]);
        assert!(z.iter().all(|&v| v == 0.0));
        let f = Tensor::full(&[3], 2.5);
        assert_eq!(f.as_slice(), &[2.5, 2.5, 2.5]);
    }

    #[test]
    fn from_vec_checks_length() {
        assert!(Tensor::from_vec(vec![1.0, 2.0], &[3]).is_err());
        assert!(Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).is_ok());
    }

    #[test]
    fn at_and_set_round_trip() {
        let mut t = Tensor::zeros(&[2, 3]);
        t.set(&[1, 2], 7.5).unwrap();
        assert_eq!(t.at(&[1, 2]).unwrap(), 7.5);
        assert_eq!(t.at(&[0, 0]).unwrap(), 0.0);
        assert!(t.at(&[2, 0]).is_err());
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let r = t.reshape(&[4]).unwrap();
        assert_eq!(r.as_slice(), t.as_slice());
        assert!(t.reshape(&[5]).is_err());
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = Rng::seed_from(42);
        let t = Tensor::uniform(&[1000], -1.0, 1.0, &mut rng);
        assert!(t.iter().all(|&v| (-1.0..1.0).contains(&v)));
    }

    #[test]
    fn gaussian_moments_are_plausible() {
        let mut rng = Rng::seed_from(7);
        let t = Tensor::gaussian(&[20_000], 3.0, 2.0, &mut rng);
        let mean = t.iter().sum::<f32>() / t.len() as f32;
        let var = t.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / t.len() as f32;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn scalar_tensor() {
        let s = Tensor::scalar(1.25);
        assert_eq!(s.len(), 1);
        assert_eq!(s.at(&[]).unwrap(), 1.25);
    }

    #[test]
    fn debug_preview_truncates() {
        let t = Tensor::zeros(&[100]);
        let text = format!("{t:?}");
        assert!(text.contains('…'));
        assert!(text.len() < 200);
    }
}
