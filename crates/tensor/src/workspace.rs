//! Reusable scratch arenas for the convolution/GEMM hot path.
//!
//! The simulation inner loop (one frame per validation image, one `im2col` +
//! matrix product per convolutional layer) used to allocate its staging
//! buffers on every call. A [`Workspace`] owns those buffers instead: the
//! first call through a layer grows them to the high-water mark and every
//! subsequent call reuses the same heap blocks, so steady-state forward
//! passes perform no im2col/packing allocations at all.

/// Packing scratch for the blocked GEMM engine (see [`crate::gemm`]).
///
/// Holds the packed A row-panels (one region per worker thread) and the
/// packed B column-panel shared by all workers. Buffers only ever grow.
#[derive(Debug, Default)]
pub struct PackBuffers {
    pub(crate) a: Vec<f32>,
    pub(crate) b: Vec<f32>,
}

impl PackBuffers {
    /// An empty pack scratch; buffers are grown on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Packing scratch for the integer code-domain GEMM engine (see
/// [`crate::gemm_i8_into`]).
///
/// Same ownership story as [`PackBuffers`], but the panels hold packed
/// i16-pair lanes (`i32` each) instead of `f32` values. Buffers only ever
/// grow.
#[derive(Debug, Default)]
pub struct PackBuffersI8 {
    pub(crate) a: Vec<i32>,
    pub(crate) b: Vec<i32>,
}

impl PackBuffersI8 {
    /// An empty pack scratch; buffers are grown on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Per-layer scratch arena: an `im2col` staging buffer plus GEMM pack
/// buffers.
///
/// # Example
///
/// ```
/// use redeye_tensor::{gemm, Tensor, Workspace};
///
/// # fn main() -> Result<(), redeye_tensor::TensorError> {
/// let mut ws = Workspace::new();
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
/// let b = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2])?;
/// let c = gemm(&mut ws, false, false, &a, &b, 1)?;
/// assert_eq!(c, a);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct Workspace {
    pub(crate) im2col: Vec<f32>,
    pub(crate) packs: PackBuffers,
    pub(crate) packs_i8: PackBuffersI8,
    /// Backward-pass staging: the `Wᵀ·g` patch-gradient matrix that
    /// `col2im` scatters back onto the input plane.
    pub(crate) grad_cols: Vec<f32>,
}

/// Address/capacity snapshot of a workspace's buffers, used to verify
/// steady-state allocation behaviour (stable pointers ⇒ no reallocation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkspaceStats {
    /// Base address of the `im2col` staging buffer.
    pub im2col_ptr: usize,
    /// Capacity (elements) of the `im2col` staging buffer.
    pub im2col_capacity: usize,
    /// Base address of the packed-A buffer.
    pub pack_a_ptr: usize,
    /// Capacity (elements) of the packed-A buffer.
    pub pack_a_capacity: usize,
    /// Base address of the packed-B buffer.
    pub pack_b_ptr: usize,
    /// Capacity (elements) of the packed-B buffer.
    pub pack_b_capacity: usize,
    /// Base address of the integer packed-A buffer.
    pub pack_ia_ptr: usize,
    /// Capacity (elements) of the integer packed-A buffer.
    pub pack_ia_capacity: usize,
    /// Base address of the integer packed-B buffer.
    pub pack_ib_ptr: usize,
    /// Capacity (elements) of the integer packed-B buffer.
    pub pack_ib_capacity: usize,
    /// Base address of the backward patch-gradient buffer.
    pub grad_cols_ptr: usize,
    /// Capacity (elements) of the backward patch-gradient buffer.
    pub grad_cols_capacity: usize,
}

impl Workspace {
    /// An empty workspace; buffers are grown on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// The GEMM packing scratch.
    pub fn packs_mut(&mut self) -> &mut PackBuffers {
        &mut self.packs
    }

    /// The integer code-domain GEMM packing scratch.
    pub fn packs_i8_mut(&mut self) -> &mut PackBuffersI8 {
        &mut self.packs_i8
    }

    /// Splits the arena into the `im2col` staging buffer and the GEMM pack
    /// scratch, so a convolution can lower into one while multiplying
    /// through the other.
    pub fn split_im2col_packs(&mut self) -> (&mut Vec<f32>, &mut PackBuffers) {
        (&mut self.im2col, &mut self.packs)
    }

    /// Splits the arena into the `im2col` staging buffer and the *integer*
    /// pack scratch, for convolutions lowered through the code-domain
    /// engine.
    pub fn split_im2col_packs_i8(&mut self) -> (&mut Vec<f32>, &mut PackBuffersI8) {
        (&mut self.im2col, &mut self.packs_i8)
    }

    /// Splits the arena three ways: `im2col` staging, the f32 pack scratch,
    /// and the integer pack scratch — for a conv executor that decides per
    /// frame which GEMM engine the lowered product runs through.
    pub fn split_im2col_all_packs(
        &mut self,
    ) -> (&mut Vec<f32>, &mut PackBuffers, &mut PackBuffersI8) {
        (&mut self.im2col, &mut self.packs, &mut self.packs_i8)
    }

    /// Splits the arena for a conv backward pass: `im2col` staging (for the
    /// weight-gradient lowering), the patch-gradient buffer (the `Wᵀ·g`
    /// matrix that `col2im` scatters), and the GEMM pack scratch.
    pub fn split_backward(&mut self) -> (&mut Vec<f32>, &mut Vec<f32>, &mut PackBuffers) {
        (&mut self.im2col, &mut self.grad_cols, &mut self.packs)
    }

    /// Total heap bytes currently held by every arena in this workspace —
    /// the peak staging footprint of the layers that ran through it (the
    /// buffers only ever grow). The implicit-GEMM conv path shows up here
    /// as an `im2col` capacity that simply never grows.
    pub fn peak_bytes(&self) -> usize {
        use std::mem::size_of;
        (self.im2col.capacity() + self.grad_cols.capacity()) * size_of::<f32>()
            + (self.packs.a.capacity() + self.packs.b.capacity()) * size_of::<f32>()
            + (self.packs_i8.a.capacity() + self.packs_i8.b.capacity()) * size_of::<i32>()
    }

    /// Snapshots buffer base addresses and capacities.
    ///
    /// Two equal snapshots around a call prove the call reallocated
    /// nothing in this workspace.
    pub fn stats(&self) -> WorkspaceStats {
        WorkspaceStats {
            im2col_ptr: self.im2col.as_ptr() as usize,
            im2col_capacity: self.im2col.capacity(),
            pack_a_ptr: self.packs.a.as_ptr() as usize,
            pack_a_capacity: self.packs.a.capacity(),
            pack_b_ptr: self.packs.b.as_ptr() as usize,
            pack_b_capacity: self.packs.b.capacity(),
            pack_ia_ptr: self.packs_i8.a.as_ptr() as usize,
            pack_ia_capacity: self.packs_i8.a.capacity(),
            pack_ib_ptr: self.packs_i8.b.as_ptr() as usize,
            pack_ib_capacity: self.packs_i8.b.capacity(),
            grad_cols_ptr: self.grad_cols.as_ptr() as usize,
            grad_cols_capacity: self.grad_cols.capacity(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_stable_when_buffers_unchanged() {
        let mut ws = Workspace::new();
        ws.im2col.resize(128, 0.0);
        ws.packs.a.resize(64, 0.0);
        ws.packs.b.resize(64, 0.0);
        let before = ws.stats();
        // Shrinking or refilling within capacity must not move anything.
        ws.im2col.clear();
        ws.im2col.resize(100, 1.0);
        assert_eq!(before, ws.stats());
    }

    #[test]
    fn split_returns_disjoint_buffers() {
        let mut ws = Workspace::new();
        let (cols, packs) = ws.split_im2col_packs();
        cols.push(1.0);
        packs.a.push(2.0);
        packs.b.push(3.0);
        assert_eq!(ws.im2col.len(), 1);
        assert_eq!(ws.packs.a.len(), 1);
        assert_eq!(ws.packs.b.len(), 1);
        let (cols, grad, packs) = ws.split_backward();
        cols.push(4.0);
        grad.push(5.0);
        packs.a.push(6.0);
        assert_eq!(ws.im2col.len(), 2);
        assert_eq!(ws.grad_cols.len(), 1);
        assert_eq!(ws.packs.a.len(), 2);
    }

    #[test]
    fn peak_bytes_tracks_arena_capacities() {
        let mut ws = Workspace::new();
        assert_eq!(ws.peak_bytes(), 0);
        ws.im2col.reserve_exact(256);
        ws.grad_cols.reserve_exact(64);
        ws.packs_i8.b.reserve_exact(32);
        let floats = ws.im2col.capacity() + ws.grad_cols.capacity();
        let ints = ws.packs_i8.b.capacity();
        assert_eq!(ws.peak_bytes(), floats * 4 + ints * 4);
    }
}
