//! Seeded random number generation.
//!
//! All stochastic behaviour in the RedEye reproduction — synthetic datasets,
//! weight initialization, thermal noise, quantizer dithering — flows through
//! this one wrapper so every experiment is reproducible from a single `u64`
//! seed.

use crate::noise_stream::NoiseSource;
use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng};

/// A seedable random number generator with the distributions RedEye needs.
///
/// Wraps [`rand::rngs::StdRng`] and adds a Box–Muller standard-normal and a
/// Knuth Poisson sampler so the workspace needs no further RNG dependencies.
///
/// # Example
///
/// ```
/// use redeye_tensor::Rng;
///
/// let mut rng = Rng::seed_from(1);
/// let u = rng.uniform(0.0, 1.0);
/// assert!((0.0..1.0).contains(&u));
/// ```
#[derive(Debug, Clone)]
pub struct Rng {
    inner: StdRng,
    /// Cached second output of the Box–Muller transform.
    spare_normal: Option<f32>,
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        Rng {
            inner: StdRng::seed_from_u64(seed),
            spare_normal: None,
        }
    }

    /// Splits off an independent generator, advancing this one.
    ///
    /// Useful for handing reproducible sub-streams to parallel workers.
    /// Splitting is a stream boundary: any cached Box–Muller spare from an
    /// odd number of normal draws is discarded, so the parent's post-split
    /// stream depends only on its underlying generator position — not on
    /// whether the pre-split draws consumed their pair fully.
    pub fn split(&mut self) -> Rng {
        self.spare_normal = None;
        Rng::seed_from(self.inner.gen::<u64>())
    }

    /// Uniform sample in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is non-finite.
    pub fn uniform(&mut self, lo: f32, hi: f32) -> f32 {
        assert!(lo <= hi, "uniform bounds inverted: [{lo}, {hi})");
        if lo == hi {
            return lo;
        }
        let v = lo + (hi - lo) * self.inner.gen::<f32>();
        // `lo + (hi-lo)·u` can round up to exactly `hi` when the range is
        // wide relative to the f32 grid at `hi` (for [2²⁴−1, 2²⁴) roughly
        // half of all draws would); clamp to keep the half-open contract.
        if v >= hi {
            hi.next_down()
        } else {
            v
        }
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index range must be non-empty");
        self.inner.gen_range(0..n)
    }

    /// A standard-normal sample via the Box–Muller transform.
    pub fn standard_normal(&mut self) -> f32 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        // Box–Muller: two uniforms → two independent normals.
        let u1: f32 = self.inner.gen::<f32>().max(f32::MIN_POSITIVE);
        let u2: f32 = self.inner.gen::<f32>();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        self.spare_normal = Some(r * theta.sin());
        r * theta.cos()
    }

    /// A normal sample with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f32, std: f32) -> f32 {
        mean + std * self.standard_normal()
    }

    /// A standard-normal sample computed end-to-end in `f64`.
    ///
    /// Unlike [`Rng::standard_normal`], the uniforms are drawn at 53-bit
    /// precision and nothing narrows through `f32`, so the tails are not
    /// granular at the `~1e-7` level — this is what large-rate Poisson
    /// approximation needs. Does not touch the `f32` Box–Muller spare.
    pub fn standard_normal_f64(&mut self) -> f64 {
        let u1: f64 = self.inner.gen::<f64>().max(f64::MIN_POSITIVE);
        let u2: f64 = self.inner.gen::<f64>();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Fills `dst` with standard-normal samples, bit-identical to (but
    /// faster than) calling [`Rng::standard_normal`] once per element.
    ///
    /// The batched loop consumes Box–Muller pairs directly instead of going
    /// through the one-element spare cache; the spare is honored on entry
    /// and left in the same state the scalar calls would leave it in, so
    /// scalar and batched draws can be freely interleaved.
    pub fn fill_standard_normal(&mut self, dst: &mut [f32]) {
        let mut i = 0usize;
        if i < dst.len() {
            if let Some(z) = self.spare_normal.take() {
                dst[i] = z;
                i += 1;
            }
        }
        while i + 1 < dst.len() {
            let u1: f32 = self.inner.gen::<f32>().max(f32::MIN_POSITIVE);
            let u2: f32 = self.inner.gen::<f32>();
            let r = (-2.0 * u1.ln()).sqrt();
            let (sin, cos) = (2.0 * std::f32::consts::PI * u2).sin_cos();
            dst[i] = r * cos;
            dst[i + 1] = r * sin;
            i += 2;
        }
        if i < dst.len() {
            dst[i] = self.standard_normal();
        }
    }

    /// A Poisson sample with rate `lambda`.
    ///
    /// Uses Knuth's product method for small rates and a normal approximation
    /// for `lambda > 64`, which is accurate to well under the shot-noise
    /// magnitudes the sensor model cares about. The approximation runs in
    /// `f64` end-to-end ([`Rng::standard_normal_f64`]): narrowing the normal
    /// through `f32` would quantize the tail at high photon counts and bias
    /// the simulated shot noise.
    ///
    /// # Panics
    ///
    /// Panics if `lambda` is negative or non-finite.
    pub fn poisson(&mut self, lambda: f64) -> u64 {
        assert!(
            lambda.is_finite() && lambda >= 0.0,
            "poisson rate must be finite and non-negative, got {lambda}"
        );
        if lambda == 0.0 {
            return 0;
        }
        if lambda > 64.0 {
            let z = self.standard_normal_f64();
            let sample = lambda + lambda.sqrt() * z;
            return sample.max(0.0).round() as u64;
        }
        let limit = (-lambda).exp();
        let mut product = 1.0f64;
        let mut count = 0u64;
        loop {
            product *= f64::from(self.inner.gen::<f32>());
            if product <= limit {
                return count;
            }
            count += 1;
        }
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn chance(&mut self, p: f32) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        self.inner.gen::<f32>() < p
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }
}

impl NoiseSource for Rng {
    fn standard_normal(&mut self) -> f32 {
        Rng::standard_normal(self)
    }

    fn uniform(&mut self, lo: f32, hi: f32) -> f32 {
        Rng::uniform(self, lo, hi)
    }

    fn chance(&mut self, p: f32) -> bool {
        Rng::chance(self, p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::seed_from(99);
        let mut b = Rng::seed_from(99);
        for _ in 0..100 {
            assert_eq!(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
        }
    }

    #[test]
    fn different_seed_different_stream() {
        let mut a = Rng::seed_from(1);
        let mut b = Rng::seed_from(2);
        let same = (0..32).filter(|_| a.uniform(0.0, 1.0) == b.uniform(0.0, 1.0));
        assert!(same.count() < 4);
    }

    #[test]
    fn normal_moments() {
        let mut rng = Rng::seed_from(3);
        let n = 50_000;
        let samples: Vec<f32> = (0..n).map(|_| rng.standard_normal()).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn poisson_mean_tracks_lambda() {
        let mut rng = Rng::seed_from(4);
        for &lambda in &[0.5f64, 4.0, 30.0, 500.0] {
            let n = 20_000;
            let mean: f64 = (0..n).map(|_| rng.poisson(lambda) as f64).sum::<f64>() / n as f64;
            let tolerance = 4.0 * (lambda / n as f64).sqrt() + 0.02;
            assert!(
                (mean - lambda).abs() < tolerance.max(0.05),
                "lambda {lambda}: mean {mean}"
            );
        }
    }

    #[test]
    fn poisson_zero_rate_is_zero() {
        let mut rng = Rng::seed_from(5);
        assert_eq!(rng.poisson(0.0), 0);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Rng::seed_from(6);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 100-element shuffle should move something");
    }

    #[test]
    fn chance_extremes() {
        let mut rng = Rng::seed_from(7);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }

    #[test]
    fn fill_matches_scalar_draws_including_spare() {
        let mut scalar = Rng::seed_from(40);
        let mut batched = Rng::seed_from(40);
        // Park a spare in both generators, then draw odd- and even-length
        // batches: the streams must stay in lockstep throughout.
        assert_eq!(scalar.standard_normal(), batched.standard_normal());
        for len in [5usize, 4, 1, 0, 7] {
            let want: Vec<f32> = (0..len).map(|_| scalar.standard_normal()).collect();
            let mut got = vec![0.0f32; len];
            batched.fill_standard_normal(&mut got);
            assert_eq!(want, got, "len {len}");
        }
        assert_eq!(scalar.uniform(0.0, 1.0), batched.uniform(0.0, 1.0));
    }

    #[test]
    fn standard_normal_f64_moments() {
        let mut rng = Rng::seed_from(41);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.standard_normal_f64()).collect();
        let mean = samples.iter().sum::<f64>() / f64::from(n);
        let var = samples.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / f64::from(n);
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn large_lambda_poisson_resolves_fine_tails() {
        // With the f64 path, samples around a large λ take many distinct
        // values near ±4σ, not a handful of f32-quantized steps.
        let mut rng = Rng::seed_from(42);
        let lambda = 1e12f64;
        let sigma = lambda.sqrt();
        let mut distinct = std::collections::HashSet::new();
        for _ in 0..256 {
            let s = rng.poisson(lambda);
            distinct.insert(s);
            let z = (s as f64 - lambda) / sigma;
            assert!(z.abs() < 8.0, "sample {s} implausibly far from λ");
        }
        assert!(
            distinct.len() > 250,
            "only {} distinct values",
            distinct.len()
        );
    }

    #[test]
    fn uniform_respects_half_open_contract_at_adversarial_bounds() {
        // At [2²⁴−1, 2²⁴) the f32 grid at `hi` is coarser than the range,
        // so without the clamp roughly half of all draws round up to
        // exactly `hi`; wide symmetric ranges hit the same rounding at the
        // upper bound.
        let mut rng = Rng::seed_from(1234);
        let (lo, hi) = (16_777_215.0f32, 16_777_216.0f32);
        for _ in 0..4096 {
            let v = rng.uniform(lo, hi);
            assert!((lo..hi).contains(&v), "{v} escaped [{lo}, {hi})");
        }
        for _ in 0..4096 {
            let v = rng.uniform(-1.0e30, 1.0e30);
            assert!((-1.0e30..1.0e30).contains(&v), "{v} escaped the range");
        }
    }

    #[test]
    fn split_discards_the_cached_boxmuller_spare() {
        // Two parents at the same seed: `a` holds a cached spare after one
        // scalar normal draw, `b` reaches the identical inner-generator
        // position with the pair fully consumed. Splitting must erase the
        // difference — both the children and the parents' subsequent
        // normal streams have to agree.
        let mut a = Rng::seed_from(64);
        let _ = a.standard_normal();
        let mut b = Rng::seed_from(64);
        let mut pair = [0.0f32; 2];
        b.fill_standard_normal(&mut pair);
        assert_eq!(
            a.split().standard_normal(),
            b.split().standard_normal(),
            "split children must agree"
        );
        assert_eq!(
            a.standard_normal(),
            b.standard_normal(),
            "the spare must not leak across a split"
        );
    }

    #[test]
    fn split_streams_are_independent() {
        let mut parent = Rng::seed_from(8);
        let mut child = parent.split();
        // The child stream should not mirror the parent stream.
        let matches = (0..32)
            .filter(|_| parent.uniform(0.0, 1.0) == child.uniform(0.0, 1.0))
            .count();
        assert!(matches < 4);
    }
}
