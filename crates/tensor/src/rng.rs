//! Seeded random number generation.
//!
//! All stochastic behaviour in the RedEye reproduction — synthetic datasets,
//! weight initialization, thermal noise, quantizer dithering — flows through
//! this one wrapper so every experiment is reproducible from a single `u64`
//! seed.

use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng};

/// A seedable random number generator with the distributions RedEye needs.
///
/// Wraps [`rand::rngs::StdRng`] and adds a Box–Muller standard-normal and a
/// Knuth Poisson sampler so the workspace needs no further RNG dependencies.
///
/// # Example
///
/// ```
/// use redeye_tensor::Rng;
///
/// let mut rng = Rng::seed_from(1);
/// let u = rng.uniform(0.0, 1.0);
/// assert!((0.0..1.0).contains(&u));
/// ```
#[derive(Debug, Clone)]
pub struct Rng {
    inner: StdRng,
    /// Cached second output of the Box–Muller transform.
    spare_normal: Option<f32>,
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        Rng {
            inner: StdRng::seed_from_u64(seed),
            spare_normal: None,
        }
    }

    /// Splits off an independent generator, advancing this one.
    ///
    /// Useful for handing reproducible sub-streams to parallel workers.
    pub fn split(&mut self) -> Rng {
        Rng::seed_from(self.inner.gen::<u64>())
    }

    /// Uniform sample in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is non-finite.
    pub fn uniform(&mut self, lo: f32, hi: f32) -> f32 {
        assert!(lo <= hi, "uniform bounds inverted: [{lo}, {hi})");
        if lo == hi {
            return lo;
        }
        lo + (hi - lo) * self.inner.gen::<f32>()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index range must be non-empty");
        self.inner.gen_range(0..n)
    }

    /// A standard-normal sample via the Box–Muller transform.
    pub fn standard_normal(&mut self) -> f32 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        // Box–Muller: two uniforms → two independent normals.
        let u1: f32 = self.inner.gen::<f32>().max(f32::MIN_POSITIVE);
        let u2: f32 = self.inner.gen::<f32>();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        self.spare_normal = Some(r * theta.sin());
        r * theta.cos()
    }

    /// A normal sample with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f32, std: f32) -> f32 {
        mean + std * self.standard_normal()
    }

    /// A Poisson sample with rate `lambda`.
    ///
    /// Uses Knuth's product method for small rates and a normal approximation
    /// for `lambda > 64`, which is accurate to well under the shot-noise
    /// magnitudes the sensor model cares about.
    ///
    /// # Panics
    ///
    /// Panics if `lambda` is negative or non-finite.
    pub fn poisson(&mut self, lambda: f64) -> u64 {
        assert!(
            lambda.is_finite() && lambda >= 0.0,
            "poisson rate must be finite and non-negative, got {lambda}"
        );
        if lambda == 0.0 {
            return 0;
        }
        if lambda > 64.0 {
            let z = f64::from(self.standard_normal());
            let sample = lambda + lambda.sqrt() * z;
            return sample.max(0.0).round() as u64;
        }
        let limit = (-lambda).exp();
        let mut product = 1.0f64;
        let mut count = 0u64;
        loop {
            product *= f64::from(self.inner.gen::<f32>());
            if product <= limit {
                return count;
            }
            count += 1;
        }
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn chance(&mut self, p: f32) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        self.inner.gen::<f32>() < p
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::seed_from(99);
        let mut b = Rng::seed_from(99);
        for _ in 0..100 {
            assert_eq!(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
        }
    }

    #[test]
    fn different_seed_different_stream() {
        let mut a = Rng::seed_from(1);
        let mut b = Rng::seed_from(2);
        let same = (0..32).filter(|_| a.uniform(0.0, 1.0) == b.uniform(0.0, 1.0));
        assert!(same.count() < 4);
    }

    #[test]
    fn normal_moments() {
        let mut rng = Rng::seed_from(3);
        let n = 50_000;
        let samples: Vec<f32> = (0..n).map(|_| rng.standard_normal()).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn poisson_mean_tracks_lambda() {
        let mut rng = Rng::seed_from(4);
        for &lambda in &[0.5f64, 4.0, 30.0, 500.0] {
            let n = 20_000;
            let mean: f64 = (0..n).map(|_| rng.poisson(lambda) as f64).sum::<f64>() / n as f64;
            let tolerance = 4.0 * (lambda / n as f64).sqrt() + 0.02;
            assert!(
                (mean - lambda).abs() < tolerance.max(0.05),
                "lambda {lambda}: mean {mean}"
            );
        }
    }

    #[test]
    fn poisson_zero_rate_is_zero() {
        let mut rng = Rng::seed_from(5);
        assert_eq!(rng.poisson(0.0), 0);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Rng::seed_from(6);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 100-element shuffle should move something");
    }

    #[test]
    fn chance_extremes() {
        let mut rng = Rng::seed_from(7);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }

    #[test]
    fn split_streams_are_independent() {
        let mut parent = Rng::seed_from(8);
        let mut child = parent.split();
        // The child stream should not mirror the parent stream.
        let matches = (0..32)
            .filter(|_| parent.uniform(0.0, 1.0) == child.uniform(0.0, 1.0))
            .count();
        assert!(matches < 4);
    }
}
