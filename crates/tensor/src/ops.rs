//! Elementwise operations and reductions on [`Tensor`].

use crate::{Tensor, TensorError};

fn check_same_shape(a: &Tensor, b: &Tensor) -> Result<(), TensorError> {
    if a.shape() != b.shape() {
        return Err(TensorError::ShapeMismatch {
            left: a.dims().to_vec(),
            right: b.dims().to_vec(),
        });
    }
    Ok(())
}

impl Tensor {
    /// Elementwise sum of two same-shaped tensors.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn add(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        check_same_shape(self, other)?;
        let data = self.iter().zip(other.iter()).map(|(a, b)| a + b).collect();
        Tensor::from_vec(data, self.dims())
    }

    /// Elementwise difference `self - other`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn sub(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        check_same_shape(self, other)?;
        let data = self.iter().zip(other.iter()).map(|(a, b)| a - b).collect();
        Tensor::from_vec(data, self.dims())
    }

    /// Elementwise (Hadamard) product.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn mul(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        check_same_shape(self, other)?;
        let data = self.iter().zip(other.iter()).map(|(a, b)| a * b).collect();
        Tensor::from_vec(data, self.dims())
    }

    /// Adds `other * scale` into `self` in place (axpy).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn add_scaled(&mut self, other: &Tensor, scale: f32) -> Result<(), TensorError> {
        check_same_shape(self, other)?;
        for (a, b) in self.iter_mut().zip(other.iter()) {
            *a += scale * b;
        }
        Ok(())
    }

    /// Returns a new tensor with every element multiplied by `factor`.
    pub fn scale(&self, factor: f32) -> Tensor {
        self.map(|v| v * factor)
    }

    /// Multiplies every element by `factor` in place.
    pub fn scale_in_place(&mut self, factor: f32) {
        for v in self.iter_mut() {
            *v *= factor;
        }
    }

    /// Applies `f` to every element, producing a new tensor.
    pub fn map<F: Fn(f32) -> f32>(&self, f: F) -> Tensor {
        let data = self.iter().map(|&v| f(v)).collect();
        Tensor::from_vec(data, self.dims()).expect("map preserves volume")
    }

    /// Applies `f` to every element in place.
    pub fn map_in_place<F: Fn(f32) -> f32>(&mut self, f: F) {
        for v in self.iter_mut() {
            *v = f(*v);
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.iter().sum()
    }

    /// Arithmetic mean of all elements.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Empty`] for an empty tensor.
    pub fn mean(&self) -> Result<f32, TensorError> {
        if self.is_empty() {
            return Err(TensorError::Empty);
        }
        Ok(self.sum() / self.len() as f32)
    }

    /// Largest element.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Empty`] for an empty tensor.
    pub fn max(&self) -> Result<f32, TensorError> {
        self.iter()
            .copied()
            .fold(None, |acc: Option<f32>, v| {
                Some(acc.map_or(v, |m| m.max(v)))
            })
            .ok_or(TensorError::Empty)
    }

    /// Smallest element.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Empty`] for an empty tensor.
    pub fn min(&self) -> Result<f32, TensorError> {
        self.iter()
            .copied()
            .fold(None, |acc: Option<f32>, v| {
                Some(acc.map_or(v, |m| m.min(v)))
            })
            .ok_or(TensorError::Empty)
    }

    /// Index of the largest element (first on ties).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Empty`] for an empty tensor.
    pub fn argmax(&self) -> Result<usize, TensorError> {
        if self.is_empty() {
            return Err(TensorError::Empty);
        }
        let mut best = 0;
        for (i, &v) in self.iter().enumerate() {
            if v > self.as_slice()[best] {
                best = i;
            }
        }
        Ok(best)
    }

    /// Indices of the `k` largest elements, in descending value order.
    ///
    /// Returns fewer than `k` indices if the tensor has fewer elements.
    pub fn top_k(&self, k: usize) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.len()).collect();
        order.sort_by(|&a, &b| {
            self.as_slice()[b]
                .partial_cmp(&self.as_slice()[a])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        order.truncate(k);
        order
    }

    /// Mean of squared elements — the signal power used in SNR computations.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Empty`] for an empty tensor.
    pub fn power(&self) -> Result<f32, TensorError> {
        if self.is_empty() {
            return Err(TensorError::Empty);
        }
        Ok(self.iter().map(|v| v * v).sum::<f32>() / self.len() as f32)
    }

    /// Root-mean-square deviation from `other`, a convergence metric used by
    /// the analog-vs-digital fidelity tests.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ and
    /// [`TensorError::Empty`] for empty tensors.
    pub fn rms_error(&self, other: &Tensor) -> Result<f32, TensorError> {
        check_same_shape(self, other)?;
        if self.is_empty() {
            return Err(TensorError::Empty);
        }
        let mse = self
            .iter()
            .zip(other.iter())
            .map(|(a, b)| (a - b).powi(2))
            .sum::<f32>()
            / self.len() as f32;
        Ok(mse.sqrt())
    }

    /// Clamps every element into `[lo, hi]`, modeling analog signal clipping
    /// at maximum swing (the paper's rectification mechanism).
    pub fn clamp(&self, lo: f32, hi: f32) -> Tensor {
        self.map(|v| v.clamp(lo, hi))
    }

    /// Rectified linear unit: `max(v, 0)` elementwise.
    pub fn relu(&self) -> Tensor {
        self.map(|v| v.max(0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(data: &[f32]) -> Tensor {
        Tensor::from_vec(data.to_vec(), &[data.len()]).unwrap()
    }

    #[test]
    fn add_sub_mul() {
        let a = t(&[1.0, 2.0, 3.0]);
        let b = t(&[4.0, 5.0, 6.0]);
        assert_eq!(a.add(&b).unwrap().as_slice(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).unwrap().as_slice(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.mul(&b).unwrap().as_slice(), &[4.0, 10.0, 18.0]);
    }

    #[test]
    fn mismatched_shapes_rejected() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[3, 2]);
        assert!(matches!(a.add(&b), Err(TensorError::ShapeMismatch { .. })));
    }

    #[test]
    fn add_scaled_is_axpy() {
        let mut a = t(&[1.0, 1.0]);
        let b = t(&[2.0, 4.0]);
        a.add_scaled(&b, 0.5).unwrap();
        assert_eq!(a.as_slice(), &[2.0, 3.0]);
    }

    #[test]
    fn reductions() {
        let a = t(&[3.0, -1.0, 2.0]);
        assert_eq!(a.sum(), 4.0);
        assert!((a.mean().unwrap() - 4.0 / 3.0).abs() < 1e-6);
        assert_eq!(a.max().unwrap(), 3.0);
        assert_eq!(a.min().unwrap(), -1.0);
        assert_eq!(a.argmax().unwrap(), 0);
    }

    #[test]
    fn empty_reductions_error() {
        let e = Tensor::zeros(&[0]);
        assert!(e.mean().is_err());
        assert!(e.max().is_err());
        assert!(e.argmax().is_err());
        assert!(e.power().is_err());
    }

    #[test]
    fn top_k_descending() {
        let a = t(&[0.1, 0.9, 0.5, 0.7]);
        assert_eq!(a.top_k(3), vec![1, 3, 2]);
        assert_eq!(a.top_k(10).len(), 4);
    }

    #[test]
    fn power_and_rms() {
        let a = t(&[3.0, 4.0]);
        assert_eq!(a.power().unwrap(), 12.5);
        let b = t(&[0.0, 0.0]);
        assert!((a.rms_error(&b).unwrap() - 12.5f32.sqrt()).abs() < 1e-6);
        assert_eq!(a.rms_error(&a).unwrap(), 0.0);
    }

    #[test]
    fn clamp_and_relu() {
        let a = t(&[-2.0, 0.5, 3.0]);
        assert_eq!(a.clamp(-1.0, 1.0).as_slice(), &[-1.0, 0.5, 1.0]);
        assert_eq!(a.relu().as_slice(), &[0.0, 0.5, 3.0]);
    }

    #[test]
    fn map_preserves_shape() {
        let a = Tensor::zeros(&[2, 3, 4]);
        let m = a.map(|v| v + 1.0);
        assert_eq!(m.dims(), &[2, 3, 4]);
        assert!(m.iter().all(|&v| v == 1.0));
    }
}
