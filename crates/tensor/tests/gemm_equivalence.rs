//! Property-based equivalence between the packed, blocked, optionally
//! threaded GEMM engine and the retained naive reference.
//!
//! Shapes are sampled across the awkward cases the blocking logic has to get
//! right: degenerate inner dimensions (`k = 0`), 1×1 tiles, extents that are
//! not multiples of any block size, and thread budgets from 1 to several
//! times the available row panels. Tolerance is 1e-4 *relative* — blocked
//! accumulation reassociates sums, so bitwise equality with the naive loop
//! is not expected (threaded-vs-serial bitwise equality, however, is).

use proptest::prelude::*;
use redeye_tensor::{gemm, matmul_naive, Rng, Tensor, Workspace};

fn random(rows: usize, cols: usize, seed: u64) -> Tensor {
    let mut rng = Rng::seed_from(seed);
    Tensor::uniform(&[rows, cols], -1.0, 1.0, &mut rng)
}

fn assert_close(packed: &Tensor, reference: &Tensor) {
    assert_eq!(packed.dims(), reference.dims());
    for (i, (p, r)) in packed.iter().zip(reference.iter()).enumerate() {
        assert!(
            (p - r).abs() <= 1e-4 * r.abs().max(1.0),
            "element {i}: packed {p} vs reference {r}"
        );
    }
}

proptest! {
    /// Random shapes, including k = 0 and extents straddling MR/NR/MC/KC/NC
    /// boundaries, against the naive oracle.
    #[test]
    fn packed_matches_naive_on_random_shapes(
        m in 1usize..=70,
        k in 0usize..=70,
        n in 1usize..=70,
        seed in 0u64..=1_000_000,
    ) {
        let a = random(m, k, seed);
        let b = random(k, n, seed ^ 0x9e3779b9);
        let mut ws = Workspace::new();
        let packed = gemm(&mut ws, false, false, &a, &b, 1).unwrap();
        let naive = matmul_naive(&a, &b).unwrap();
        assert_close(&packed, &naive);
    }

    /// Every transpose-flag combination must equal the naive product of the
    /// explicitly transposed operands.
    #[test]
    fn transpose_flags_match_explicit_transposes(
        m in 1usize..=33,
        k in 1usize..=33,
        n in 1usize..=33,
        flags in 0usize..4,
        seed in 0u64..=1_000_000,
    ) {
        let (ta, tb) = (flags & 1 != 0, flags & 2 != 0);
        // Stored layouts: op(A) is m×k, so A is stored k×m when ta.
        let a = if ta { random(k, m, seed) } else { random(m, k, seed) };
        let b = if tb { random(n, k, seed ^ 7) } else { random(k, n, seed ^ 7) };
        let mut ws = Workspace::new();
        let packed = gemm(&mut ws, ta, tb, &a, &b, 1).unwrap();
        let a_log = if ta { a.transpose2().unwrap() } else { a };
        let b_log = if tb { b.transpose2().unwrap() } else { b };
        let naive = matmul_naive(&a_log, &b_log).unwrap();
        assert_close(&packed, &naive);
    }

    /// Any thread budget must produce bit-identical results to the serial
    /// engine: every output element is accumulated by exactly one worker in
    /// the same KC-block order.
    #[test]
    fn thread_budgets_are_bit_identical(
        m in 1usize..=70,
        k in 1usize..=50,
        n in 1usize..=50,
        threads in 2usize..=8,
        seed in 0u64..=1_000_000,
    ) {
        let a = random(m, k, seed);
        let b = random(k, n, seed ^ 0xabcd);
        let mut ws = Workspace::new();
        let serial = gemm(&mut ws, false, false, &a, &b, 1).unwrap();
        let threaded = gemm(&mut ws, false, false, &a, &b, threads).unwrap();
        assert_eq!(serial, threaded, "threads={threads}");
    }

    /// 1×1 output tiles (m = n = 1) exercise maximal edge padding in both
    /// pack directions; k = 0 must yield the zero "matrix".
    #[test]
    fn one_by_one_tiles_and_degenerate_inner_dim(
        k in 0usize..=17,
        seed in 0u64..=1_000_000,
    ) {
        let a = random(1, k, seed);
        let b = random(k, 1, seed ^ 0x55);
        let mut ws = Workspace::new();
        let packed = gemm(&mut ws, false, false, &a, &b, 1).unwrap();
        let naive = matmul_naive(&a, &b).unwrap();
        assert_close(&packed, &naive);
        if k == 0 {
            assert_eq!(packed.as_slice(), &[0.0]);
        }
    }
}
