//! Property-based equivalence for the implicit-GEMM convolution path and
//! the SIMD microkernel dispatch.
//!
//! Two bit-exactness contracts are pinned here:
//!
//! 1. **Implicit == explicit lowering.** `conv_gemm_into` (and its
//!    pack-once variant `conv_gemm_packed_into`) must equal
//!    `im2col_into` + `gemm_into` *bitwise* at every geometry, because the
//!    conv B-panel packer gathers exactly the values im2col would have
//!    staged — padding taps as literal `0.0` — and the multiply itself is
//!    the same blocked engine.
//!
//! 2. **SIMD level invariance.** Every compiled microkernel level
//!    (portable / AVX2 / AVX-512) must produce bitwise-equal output at any
//!    shape and thread budget: the vector kernels are lane-parallel over
//!    output columns with separate mul+add, so each element accumulates in
//!    exactly the scalar program order.
//!
//! Both are exact assertions (`to_bits` equality), not tolerances.

use proptest::prelude::*;
use redeye_tensor::{
    conv_gemm_into, conv_gemm_packed_into, gemm_into, gemm_into_level, im2col_into, ConvGeom,
    PackBuffers, PackedWeights, Rng, SimdLevel, Tensor, Workspace,
};

fn random_vec(len: usize, seed: u64) -> Vec<f32> {
    let mut rng = Rng::seed_from(seed);
    (0..len).map(|_| rng.uniform(-1.0, 1.0)).collect()
}

/// The explicit lowering: `im2col` then the packed GEMM — the differential
/// oracle the implicit path must match bit-for-bit.
fn explicit_conv(geom: &ConvGeom, weights: &[f32], input: &[f32], out_c: usize) -> Vec<f32> {
    let x = Tensor::from_vec(input.to_vec(), &[geom.in_c(), geom.in_h(), geom.in_w()]).unwrap();
    let mut ws = Workspace::new();
    let (cols, packs) = ws.split_im2col_packs();
    im2col_into(&x, geom, cols).unwrap();
    let (patch, positions) = (geom.patch_len(), geom.out_positions());
    let mut out = vec![0.0f32; out_c * positions];
    gemm_into(
        packs, false, false, weights, cols, &mut out, out_c, positions, patch, 1,
    );
    out
}

/// Asserts both implicit entry points equal the explicit oracle bitwise,
/// across every compiled SIMD level and a serial plus an oversubscribed
/// thread budget.
fn assert_conv_equivalence(geom: &ConvGeom, out_c: usize, seed: u64) {
    let weights = random_vec(out_c * geom.patch_len(), seed);
    let input = random_vec(geom.in_c() * geom.in_h() * geom.in_w(), seed ^ 0x9e37_79b9);
    let oracle = explicit_conv(geom, &weights, &input, out_c);
    let packed = PackedWeights::pack(&weights, out_c, geom.patch_len());
    for level in SimdLevel::available_levels() {
        for threads in [1usize, 3] {
            let mut packs = PackBuffers::new();
            let mut out = vec![0.0f32; oracle.len()];
            conv_gemm_into(
                &mut packs, level, &weights, &input, geom, &mut out, out_c, threads,
            );
            assert!(
                bits(&out) == bits(&oracle),
                "implicit conv diverged from im2col oracle at {level}, {threads} threads"
            );
            out.fill(0.0);
            conv_gemm_packed_into(&mut packs, level, &packed, &input, geom, &mut out, threads);
            assert!(
                bits(&out) == bits(&oracle),
                "pack-once conv diverged from im2col oracle at {level}, {threads} threads"
            );
        }
    }
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Fixed geometries from the zoo networks the simulator actually runs:
/// the MicroNet stem, the GoogLeNet 7×7/s2 stem (spatially shrunk), and
/// the three TinyInception branch kernels, plus stride/pad edge cases.
#[test]
fn zoo_geometries_are_bit_exact_against_the_oracle() {
    let cases: &[(usize, usize, usize, usize, usize, usize, usize)] = &[
        // (in_c, in_h, in_w, kh, kw, stride, pad), out_c varied below.
        (3, 32, 32, 3, 3, 1, 1),  // MicroNet stem
        (3, 57, 57, 7, 7, 2, 3),  // GoogLeNet stem kernel, shrunk input
        (16, 14, 14, 1, 1, 1, 0), // inception 1×1 reduce
        (8, 14, 14, 3, 3, 1, 1),  // inception 3×3 branch
        (4, 14, 14, 5, 5, 1, 2),  // inception 5×5 branch
        (2, 9, 9, 3, 3, 2, 0),    // strided, no pad
        (1, 7, 7, 7, 7, 1, 3),    // kernel == input, all-pad border
        (5, 1, 11, 1, 3, 1, 1),   // degenerate height
    ];
    for (i, &(c, h, w, kh, kw, s, p)) in cases.iter().enumerate() {
        let geom = ConvGeom::new(c, h, w, kh, kw, s, p).unwrap();
        let out_c = 1 + (i % 3) * 8 + i; // 1..=23, straddles MR=8 panels
        assert_conv_equivalence(&geom, out_c, 0xC0FFEE ^ i as u64);
    }
}

proptest! {
    /// Random geometries: the implicit packer must agree with the oracle
    /// bitwise wherever the geometry is constructible.
    #[test]
    fn implicit_conv_matches_oracle_on_random_geometries(
        in_c in 1usize..=4,
        in_h in 1usize..=14,
        in_w in 1usize..=14,
        kh in 1usize..=5,
        kw in 1usize..=5,
        stride in 1usize..=3,
        pad in 0usize..=3,
        out_c in 1usize..=17,
        seed in 0u64..=1_000_000,
    ) {
        let Ok(geom) = ConvGeom::new(in_c, in_h, in_w, kh, kw, stride, pad) else {
            // Kernel larger than the padded input: nothing to check.
            return Ok(());
        };
        assert_conv_equivalence(&geom, out_c, seed);
    }

    /// Plain GEMM at every compiled SIMD level is bit-identical to the
    /// portable kernel at any shape and thread budget.
    #[test]
    fn simd_levels_bit_identical_on_random_gemms(
        m in 1usize..=70,
        k in 1usize..=60,
        n in 1usize..=60,
        threads in 1usize..=4,
        seed in 0u64..=1_000_000,
    ) {
        let a = random_vec(m * k, seed);
        let b = random_vec(k * n, seed ^ 0xBEEF);
        let mut reference = vec![0.0f32; m * n];
        let mut packs = PackBuffers::new();
        gemm_into_level(
            &mut packs, SimdLevel::Portable, false, false, &a, &b, &mut reference,
            m, n, k, 1,
        );
        for level in SimdLevel::available_levels() {
            let mut out = vec![0.0f32; m * n];
            gemm_into_level(
                &mut packs, level, false, false, &a, &b, &mut out, m, n, k, threads,
            );
            prop_assert_eq!(
                bits(&out), bits(&reference),
                "level {} @ {} threads diverged from portable", level, threads
            );
        }
    }
}
