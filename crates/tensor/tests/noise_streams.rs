//! Statistical quality tests for the counter-based noise streams.
//!
//! The unit tests in `noise_stream.rs` pin the determinism contracts
//! (same-site reproducibility, partition invariance); this suite checks that
//! the *distributions* are right: batched standard-normal fills have the
//! moments of `N(0, 1)`, per-site scalar draws agree with them, distinct
//! sites and substreams are uncorrelated, and uniform fills are flat.

use redeye_tensor::{NoiseSource, NoiseStream, Rng};

const N: usize = 100_000;

fn mean(xs: &[f32]) -> f64 {
    xs.iter().map(|&x| f64::from(x)).sum::<f64>() / xs.len() as f64
}

fn variance(xs: &[f32], mu: f64) -> f64 {
    xs.iter().map(|&x| (f64::from(x) - mu).powi(2)).sum::<f64>() / xs.len() as f64
}

fn correlation(a: &[f32], b: &[f32]) -> f64 {
    let (ma, mb) = (mean(a), mean(b));
    let cov: f64 = a
        .iter()
        .zip(b)
        .map(|(&x, &y)| (f64::from(x) - ma) * (f64::from(y) - mb))
        .sum::<f64>()
        / a.len() as f64;
    cov / (variance(a, ma).sqrt() * variance(b, mb).sqrt())
}

#[test]
fn batched_fill_has_standard_normal_moments() {
    let stream = NoiseStream::new(101);
    let mut xs = vec![0.0f32; N];
    stream.fill_standard_normal(&mut xs);
    let mu = mean(&xs);
    let var = variance(&xs, mu);
    assert!(mu.abs() < 0.02, "mean {mu}");
    assert!((var - 1.0).abs() < 0.03, "variance {var}");
    // Third moment vanishes for a symmetric distribution.
    let skew: f64 = xs.iter().map(|&x| f64::from(x).powi(3)).sum::<f64>() / N as f64;
    assert!(skew.abs() < 0.05, "skewness {skew}");
    // Tails exist but are not fat: |z| > 4 is ~6e-5 of draws.
    let extreme = xs.iter().filter(|&&x| x.abs() > 4.0).count();
    assert!(extreme < 30, "|z|>4 count {extreme}");
}

#[test]
fn per_site_scalar_draws_have_standard_normal_moments() {
    let stream = NoiseStream::new(102);
    let xs: Vec<f32> = (0..N as u64)
        .map(|site| stream.at(site).standard_normal())
        .collect();
    let mu = mean(&xs);
    let var = variance(&xs, mu);
    assert!(mu.abs() < 0.02, "mean {mu}");
    assert!((var - 1.0).abs() < 0.03, "variance {var}");
}

#[test]
fn adjacent_sites_are_uncorrelated() {
    // Draw one normal per site and correlate site i against site i+1 —
    // a lag-1 autocorrelation test over the site id, the axis the
    // column-parallel executor shards on.
    let stream = NoiseStream::new(103);
    let xs: Vec<f32> = (0..=N as u64)
        .map(|site| stream.at(site).standard_normal())
        .collect();
    let r = correlation(&xs[..N], &xs[1..]);
    assert!(r.abs() < 0.02, "lag-1 site correlation {r}");
}

#[test]
fn sibling_substreams_are_uncorrelated() {
    let root = NoiseStream::new(104);
    let mut a = vec![0.0f32; N];
    let mut b = vec![0.0f32; N];
    root.substream(0).fill_standard_normal(&mut a);
    root.substream(1).fill_standard_normal(&mut b);
    let r = correlation(&a, &b);
    assert!(r.abs() < 0.02, "substream correlation {r}");
}

#[test]
fn successive_draws_within_a_site_are_uncorrelated() {
    let stream = NoiseStream::new(105);
    let mut firsts = vec![0.0f32; N / 4];
    let mut seconds = vec![0.0f32; N / 4];
    for site in 0..N as u64 / 4 {
        let mut rng = stream.at(site);
        // Draws 1 and 3 come from different Box–Muller evaluations.
        firsts[site as usize] = rng.standard_normal();
        let _ = rng.standard_normal();
        seconds[site as usize] = rng.standard_normal();
    }
    let r = correlation(&firsts, &seconds);
    assert!(r.abs() < 0.03, "within-site draw correlation {r}");
}

#[test]
fn uniform_fill_is_flat() {
    let stream = NoiseStream::new(106);
    let mut xs = vec![0.0f32; N];
    stream.fill_uniform(0.0, 1.0, &mut xs);
    let mu = mean(&xs);
    let var = variance(&xs, mu);
    assert!((mu - 0.5).abs() < 0.005, "mean {mu}");
    assert!((var - 1.0 / 12.0).abs() < 0.002, "variance {var}");
    // Decile histogram deviates from uniform by < 5% per bin.
    let mut bins = [0usize; 10];
    for &x in &xs {
        bins[((x * 10.0) as usize).min(9)] += 1;
    }
    for (i, &b) in bins.iter().enumerate() {
        let frac = b as f64 / N as f64;
        assert!((frac - 0.1).abs() < 0.005, "bin {i}: {frac}");
    }
}

#[test]
fn threaded_shards_reproduce_the_serial_fill() {
    // The end-to-end property the executor depends on: filling a plane in
    // parallel bands (even offsets) is bit-identical to the serial fill.
    let stream = NoiseStream::new(107);
    let mut serial = vec![0.0f32; 64 * 1024 + 3];
    stream.fill_standard_normal(&mut serial);
    let mut sharded = vec![0.0f32; serial.len()];
    let chunk = 9 * 1024 + 2; // even → pair-aligned band starts
    std::thread::scope(|scope| {
        for (t, band) in sharded.chunks_mut(chunk).enumerate() {
            let stream = &stream;
            scope.spawn(move || stream.fill_standard_normal_at((t * chunk) as u64, band));
        }
    });
    assert_eq!(serial, sharded);
}

#[test]
fn sequential_rng_batched_fill_matches_moments_too() {
    // `Rng::fill_standard_normal` is the batched path for the legacy
    // sequential generator (used by the simulator's Gaussian noise layer).
    let mut rng = Rng::seed_from(108);
    let mut xs = vec![0.0f32; N];
    rng.fill_standard_normal(&mut xs);
    let mu = mean(&xs);
    let var = variance(&xs, mu);
    assert!(mu.abs() < 0.02, "mean {mu}");
    assert!((var - 1.0).abs() < 0.03, "variance {var}");
}
