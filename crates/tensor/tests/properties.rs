//! Property-based tests for the tensor substrate.

use proptest::prelude::*;
use redeye_tensor::{col2im, im2col, matmul, ConvGeom, Rng, Tensor};

fn small_tensor(max_len: usize) -> impl Strategy<Value = Tensor> {
    (1usize..=max_len).prop_flat_map(|len| {
        prop::collection::vec(-100.0f32..100.0, len)
            .prop_map(move |data| Tensor::from_vec(data, &[len]).unwrap())
    })
}

proptest! {
    #[test]
    fn add_commutes(len in 1usize..64, seed in 0u64..1000) {
        let mut rng = Rng::seed_from(seed);
        let a = Tensor::uniform(&[len], -10.0, 10.0, &mut rng);
        let b = Tensor::uniform(&[len], -10.0, 10.0, &mut rng);
        prop_assert_eq!(a.add(&b).unwrap(), b.add(&a).unwrap());
    }

    #[test]
    fn scale_by_one_is_identity(t in small_tensor(64)) {
        prop_assert_eq!(t.scale(1.0), t);
    }

    #[test]
    fn sub_self_is_zero(t in small_tensor(64)) {
        let z = t.sub(&t).unwrap();
        prop_assert!(z.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn relu_is_idempotent(t in small_tensor(64)) {
        let once = t.relu();
        prop_assert_eq!(once.relu(), once);
    }

    #[test]
    fn clamp_bounds_hold(t in small_tensor(64), lo in -5.0f32..0.0, span in 0.0f32..10.0) {
        let hi = lo + span;
        let c = t.clamp(lo, hi);
        prop_assert!(c.iter().all(|&v| v >= lo && v <= hi));
    }

    #[test]
    fn top1_matches_argmax(t in small_tensor(64)) {
        prop_assert_eq!(t.top_k(1)[0], t.argmax().unwrap());
    }

    #[test]
    fn reshape_preserves_sum(len_a in 1usize..8, len_b in 1usize..8, seed in 0u64..1000) {
        let mut rng = Rng::seed_from(seed);
        let t = Tensor::uniform(&[len_a, len_b], -1.0, 1.0, &mut rng);
        let r = t.reshape(&[len_b, len_a]).unwrap();
        prop_assert!((t.sum() - r.sum()).abs() < 1e-5);
    }

    #[test]
    fn matmul_distributes_over_add(
        m in 1usize..5, k in 1usize..5, n in 1usize..5, seed in 0u64..1000,
    ) {
        let mut rng = Rng::seed_from(seed);
        let a = Tensor::uniform(&[m, k], -2.0, 2.0, &mut rng);
        let b = Tensor::uniform(&[k, n], -2.0, 2.0, &mut rng);
        let c = Tensor::uniform(&[k, n], -2.0, 2.0, &mut rng);
        let lhs = matmul(&a, &b.add(&c).unwrap()).unwrap();
        let rhs = matmul(&a, &b).unwrap().add(&matmul(&a, &c).unwrap()).unwrap();
        for (x, y) in lhs.iter().zip(rhs.iter()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn im2col_col2im_adjoint(
        c in 1usize..3, h in 3usize..7, w in 3usize..7,
        k in 1usize..4, stride in 1usize..3, pad in 0usize..2,
        seed in 0u64..1000,
    ) {
        prop_assume!(h + 2 * pad >= k && w + 2 * pad >= k);
        let geom = ConvGeom::new(c, h, w, k, k, stride, pad).unwrap();
        let mut rng = Rng::seed_from(seed);
        let x = Tensor::uniform(&[c, h, w], -1.0, 1.0, &mut rng);
        let y = Tensor::uniform(&[geom.patch_len(), geom.out_positions()], -1.0, 1.0, &mut rng);
        let lhs: f32 = im2col(&x, &geom).unwrap().iter().zip(y.iter()).map(|(a, b)| a * b).sum();
        let rhs: f32 = x.iter().zip(col2im(&y, &geom).unwrap().iter()).map(|(a, b)| a * b).sum();
        prop_assert!((lhs - rhs).abs() < 1e-2 * (1.0 + lhs.abs()));
    }

    #[test]
    fn im2col_preserves_energy_of_unit_kernel(
        c in 1usize..3, h in 2usize..6, w in 2usize..6, seed in 0u64..1000,
    ) {
        // With a 1x1 stride-1 kernel, im2col is a bijection on elements.
        let geom = ConvGeom::new(c, h, w, 1, 1, 1, 0).unwrap();
        let mut rng = Rng::seed_from(seed);
        let x = Tensor::uniform(&[c, h, w], -1.0, 1.0, &mut rng);
        let cols = im2col(&x, &geom).unwrap();
        prop_assert!((cols.power().unwrap() - x.power().unwrap()).abs() < 1e-5);
    }
}
