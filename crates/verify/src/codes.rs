//! Pass 2 — DAC/code range.
//!
//! Every convolution's weight codes must be representable by the 8-bit
//! signed fixed-point tunable-capacitor DAC (§IV-A), its dequantization
//! scale and biases must be finite, and the code/bias buffer lengths must
//! agree with the layer geometry the shape pass inferred.

use crate::diag::{DiagClass, Diagnostic, Report, Severity};
use crate::shape::Site;
use crate::Instruction;
use redeye_analog::{max_signed_code, DAC_WEIGHT_BITS};

fn err(code: &'static str, message: String) -> Diagnostic {
    Diagnostic::new(Severity::Error, DiagClass::CodeRange, code, message)
}

pub(crate) fn run(sites: &[Site<'_>], report: &mut Report) {
    let limit = max_signed_code(DAC_WEIGHT_BITS);
    for site in sites {
        let Instruction::Conv {
            name,
            out_c,
            kernel,
            codes,
            scale,
            bias,
            ..
        } = site.inst
        else {
            continue;
        };
        let out_of_range: Vec<i32> = codes.iter().copied().filter(|c| c.abs() > limit).collect();
        if let Some(&worst) = out_of_range.iter().max_by_key(|c| c.abs()) {
            report.push(
                err(
                    "RE0201",
                    format!(
                        "conv `{name}`: {} weight code(s) outside the {DAC_WEIGHT_BITS}-bit DAC \
                         range [-{limit}, {limit}] (worst: {worst})",
                        out_of_range.len()
                    ),
                )
                .at_layer(name)
                .at_path(&site.path)
                .with_note("codes are applied by the tunable-capacitor DAC and cannot be clamped"),
            );
        }
        if !scale.is_finite() || *scale <= 0.0 {
            report.push(
                err(
                    "RE0204",
                    format!("conv `{name}`: dequantization scale {scale} is not a positive finite value"),
                )
                .at_layer(name)
                .at_path(&site.path),
            );
        }
        if bias.len() != *out_c {
            report.push(
                err(
                    "RE0203",
                    format!(
                        "conv `{name}`: bias length {} does not match {out_c} output channels",
                        bias.len()
                    ),
                )
                .at_layer(name)
                .at_path(&site.path),
            );
        } else if bias.iter().any(|b| !b.is_finite()) {
            report.push(
                err(
                    "RE0204",
                    format!("conv `{name}`: bias contains a non-finite value"),
                )
                .at_layer(name)
                .at_path(&site.path),
            );
        }
        if let Some([in_c, _, _]) = site.in_shape {
            let patch = in_c * kernel * kernel;
            if codes.len() != out_c * patch {
                report.push(
                    err(
                        "RE0202",
                        format!(
                            "conv `{name}`: {} weight codes do not cover {out_c} channels x \
                             {patch}-element patches ({in_c}x{kernel}x{kernel} input window)",
                            codes.len()
                        ),
                    )
                    .at_layer(name)
                    .at_path(&site.path),
                );
            }
        }
    }
}
