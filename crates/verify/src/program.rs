//! The RedEye ConvNet program representation (§III-C).
//!
//! A developer "writes a ConvNet program to the RedEye program SRAM": the
//! layer ordering, layer dimensions, convolutional kernel weights (8-bit
//! fixed point), and per-layer noise parameters. [`Program`] is that object.

use redeye_analog::SnrDb;
use serde::{Deserialize, Serialize};

/// One instruction of a RedEye program — one cyclic pass through (a subset
/// of) the column modules.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Instruction {
    /// Convolution in the convolutional module, with fused rectification
    /// (clipping at swing). Weights are signed fixed-point codes for the
    /// tunable-capacitor DAC.
    Conv {
        /// Layer name.
        name: String,
        /// Output channels.
        out_c: usize,
        /// Square kernel extent.
        kernel: usize,
        /// Stride.
        stride: usize,
        /// Padding.
        pad: usize,
        /// Whether rectification follows.
        relu: bool,
        /// Signed weight codes, `(out_c × patch_len)` row-major.
        codes: Vec<i32>,
        /// Real weight per unit code (dequantization scale).
        scale: f32,
        /// Per-output-channel bias (applied as a digital offset).
        bias: Vec<f32>,
        /// Noise-admission setting for this layer's damping circuit.
        snr: SnrDb,
    },
    /// Max pooling in the max-pooling module.
    MaxPool {
        /// Layer name.
        name: String,
        /// Window extent.
        window: usize,
        /// Stride.
        stride: usize,
        /// Padding.
        pad: usize,
    },
    /// Average pooling (an accumulate with fixed weights in the
    /// convolutional module).
    AvgPool {
        /// Layer name.
        name: String,
        /// Window extent.
        window: usize,
        /// Stride.
        stride: usize,
        /// Padding.
        pad: usize,
        /// Noise-admission setting.
        snr: SnrDb,
    },
    /// Local response normalization, realized by the max-pooling module's
    /// sample adjusting convolutional weights for the next cycle (§III-B ③).
    Lrn {
        /// Layer name.
        name: String,
        /// Channel window.
        size: usize,
        /// α parameter.
        alpha: f32,
        /// β exponent.
        beta: f32,
        /// k bias.
        k: f32,
        /// Noise-admission setting.
        snr: SnrDb,
    },
    /// Parallel branch execution with channel concatenation (inception);
    /// each branch is a chain of instructions over the same input.
    Inception {
        /// Module name.
        name: String,
        /// Branches.
        branches: Vec<Vec<Instruction>>,
    },
}

impl Instruction {
    /// The instruction's layer name.
    pub fn name(&self) -> &str {
        match self {
            Instruction::Conv { name, .. }
            | Instruction::MaxPool { name, .. }
            | Instruction::AvgPool { name, .. }
            | Instruction::Lrn { name, .. }
            | Instruction::Inception { name, .. } => name,
        }
    }

    /// Bytes of kernel storage this instruction needs in the program SRAM
    /// (8-bit codes), counting nested branches.
    pub fn kernel_bytes(&self) -> usize {
        match self {
            Instruction::Conv { codes, .. } => codes.len(),
            Instruction::Inception { branches, .. } => branches
                .iter()
                .flat_map(|b| b.iter().map(Instruction::kernel_bytes))
                .sum(),
            _ => 0,
        }
    }

    /// Kernel bytes that must be resident *simultaneously* while this
    /// instruction streams: RedEye cycles weights channel-by-channel from
    /// the program store, so a conv needs one output channel's kernel
    /// (double-buffered) per active module bank.
    pub fn kernel_working_set_bytes(&self) -> usize {
        match self {
            Instruction::Conv { codes, out_c, .. } => {
                if *out_c == 0 {
                    0
                } else {
                    // One channel's patch, double-buffered.
                    (codes.len() / out_c) * 2
                }
            }
            Instruction::Inception { branches, .. } => branches
                .iter()
                .map(|b| {
                    b.iter()
                        .map(Instruction::kernel_working_set_bytes)
                        .max()
                        .unwrap_or(0)
                })
                .sum(),
            _ => 0,
        }
    }
}

/// A complete RedEye program: input geometry, the instruction chain, and the
/// quantization (readout) setting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Program {
    /// Human-readable program name.
    pub name: String,
    /// Input shape `[channels, height, width]`.
    pub input: [usize; 3],
    /// The analog instruction chain.
    pub instructions: Vec<Instruction>,
    /// ADC resolution of the final quantization module.
    pub adc_bits: u32,
}

impl Program {
    /// Creates a program.
    pub fn new(
        name: impl Into<String>,
        input: [usize; 3],
        instructions: Vec<Instruction>,
        adc_bits: u32,
    ) -> Self {
        Program {
            name: name.into(),
            input,
            instructions,
            adc_bits,
        }
    }

    /// Total kernel bytes across the whole program (what the host must
    /// stream over the program interface per reconfiguration).
    pub fn kernel_bytes(&self) -> usize {
        self.instructions
            .iter()
            .map(Instruction::kernel_bytes)
            .sum()
    }

    /// Peak simultaneous kernel residency (what must fit in the 9-kB kernel
    /// SRAM).
    pub fn kernel_working_set_bytes(&self) -> usize {
        self.instructions
            .iter()
            .map(Instruction::kernel_working_set_bytes)
            .max()
            .unwrap_or(0)
    }

    /// Number of top-level instructions.
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// Whether the program is empty (capture-only).
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conv(name: &str, out_c: usize, patch: usize) -> Instruction {
        Instruction::Conv {
            name: name.into(),
            out_c,
            kernel: 3,
            stride: 1,
            pad: 1,
            relu: true,
            codes: vec![0; out_c * patch],
            scale: 1.0 / 128.0,
            bias: vec![0.0; out_c],
            snr: SnrDb::new(40.0),
        }
    }

    #[test]
    fn kernel_bytes_counts_codes() {
        let p = Program::new("t", [3, 8, 8], vec![conv("c1", 4, 27)], 4);
        assert_eq!(p.kernel_bytes(), 108);
        // Working set: one channel (27 codes) double-buffered.
        assert_eq!(p.kernel_working_set_bytes(), 54);
    }

    #[test]
    fn inception_working_set_sums_branches() {
        let inc = Instruction::Inception {
            name: "i".into(),
            branches: vec![vec![conv("a", 2, 9)], vec![conv("b", 2, 25)]],
        };
        assert_eq!(inc.kernel_bytes(), 18 + 50);
        assert_eq!(inc.kernel_working_set_bytes(), 18 + 50);
        // (each branch holds one double-buffered channel: 9·2 + 25·2)
    }

    #[test]
    fn program_serde_round_trip() {
        let p = Program::new("t", [3, 8, 8], vec![conv("c1", 2, 27)], 6);
        let json = serde_json::to_string(&p).unwrap();
        let back: Program = serde_json::from_str(&json).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn pooling_needs_no_kernel_storage() {
        let pool = Instruction::MaxPool {
            name: "p".into(),
            window: 3,
            stride: 2,
            pad: 0,
        };
        assert_eq!(pool.kernel_bytes(), 0);
        assert_eq!(pool.kernel_working_set_bytes(), 0);
    }
}
