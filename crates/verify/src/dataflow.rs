//! The shared forward-dataflow engine every analysis pass runs on.
//!
//! The Program IR is a tree: a top-level instruction chain whose
//! [`Instruction::Inception`] nodes each hold a list of branch chains that
//! fork from the same input and concatenate along channels. The IR has no
//! back-edges, so a *single* forward walk in program order is already the
//! dataflow fixpoint — the "fixpoint engine" degenerates to one depth-first
//! pass with a join at every inception. Passes plug in by implementing
//! [`ForwardAnalysis`]: an abstract state, a per-instruction transfer
//! function, and a join over inception branch exits. The engine owns the
//! traversal mechanics that every pass used to duplicate: index-path
//! bookkeeping, inception recursion, cut propagation (a transfer returning
//! `None` kills the dataflow so downstream instructions see no state), and
//! the executor-matching stage ordinal.
//!
//! Shape inference ([`crate::shape`]), noise admission ([`crate::noise`]),
//! signal-range interval analysis ([`crate::signal`]) and the static cost
//! model ([`crate::cost`]) all run on this engine.

use crate::diag::Report;
use crate::{Instruction, Program};

/// Where in the program the instruction being visited sits.
pub(crate) struct Ctx<'a> {
    /// Instruction index path (see [`crate::Diagnostic::path`]).
    pub path: &'a [usize],
    /// Depth-first stage ordinal over non-inception instructions — the same
    /// numbering the executor assigns noise streams in, so analyses can
    /// speak about "stage N" consistently with runtime artifacts.
    pub ordinal: usize,
}

/// A forward abstract interpretation over the Program IR.
///
/// `'p` is the program's lifetime: analyses may retain `&'p Instruction`
/// references (the shape pass's sites do).
pub(crate) trait ForwardAnalysis<'p> {
    /// The abstract value flowing along an edge of the instruction chain.
    type State: Clone;

    /// Transfer function for a non-inception instruction. Returning `None`
    /// cuts the dataflow: downstream instructions are visited through
    /// [`Self::visit_unreachable`] instead.
    fn transfer(
        &mut self,
        inst: &'p Instruction,
        state: &Self::State,
        ctx: &Ctx<'_>,
        report: &mut Report,
    ) -> Option<Self::State>;

    /// Join for an inception node. `exits` holds one entry per branch, in
    /// branch order: the branch chain's exit state, or `None` if that branch
    /// cut (an empty branch exits with `state` untouched — passthrough).
    /// The engine has already walked every branch from a clone of `state`.
    fn join(
        &mut self,
        inst: &'p Instruction,
        state: &Self::State,
        exits: &[Option<Self::State>],
        ctx: &Ctx<'_>,
        report: &mut Report,
    ) -> Option<Self::State>;

    /// Visit for an instruction the dataflow no longer reaches (downstream
    /// of a cut), so passes can still run state-independent checks on it.
    fn visit_unreachable(&mut self, inst: &'p Instruction, ctx: &Ctx<'_>, report: &mut Report) {
        let _ = (inst, ctx, report);
    }

    /// Called once, after the walk, when the *top-level* chain was cut at
    /// index `cut` and instructions remain after it.
    fn chain_cut(&mut self, insts: &'p [Instruction], cut: usize, report: &mut Report) {
        let _ = (insts, cut, report);
    }
}

/// Runs `analysis` forward over the whole program from `start` and returns
/// the exit state at the readout, or `None` if the dataflow was cut (or
/// `start` was already `None`, in which case every instruction is visited
/// as unreachable).
pub(crate) fn run<'p, A: ForwardAnalysis<'p>>(
    program: &'p Program,
    start: Option<A::State>,
    analysis: &mut A,
    report: &mut Report,
) -> Option<A::State> {
    let mut ordinal = 0usize;
    walk(
        &program.instructions,
        &[],
        start,
        true,
        &mut ordinal,
        analysis,
        report,
    )
}

/// Walks one chain. Inception branch sites are visited *before* the
/// inception's own join — the depth-first program order the executor runs
/// in and the site-consuming passes (first-use tracking) depend on.
fn walk<'p, A: ForwardAnalysis<'p>>(
    insts: &'p [Instruction],
    prefix: &[usize],
    start: Option<A::State>,
    top_level: bool,
    ordinal: &mut usize,
    analysis: &mut A,
    report: &mut Report,
) -> Option<A::State> {
    let mut cur = start;
    let mut cut_at: Option<usize> = None;
    for (i, inst) in insts.iter().enumerate() {
        let mut path = prefix.to_vec();
        path.push(i);
        let reachable = cur.is_some();
        let out = match inst {
            Instruction::Inception { branches, .. } => {
                let state = cur.clone();
                let mut exits = Vec::with_capacity(branches.len());
                for (bi, branch) in branches.iter().enumerate() {
                    let mut bpath = path.clone();
                    bpath.push(bi);
                    exits.push(walk(
                        branch,
                        &bpath,
                        state.clone(),
                        false,
                        ordinal,
                        analysis,
                        report,
                    ));
                }
                let ctx = Ctx {
                    path: &path,
                    ordinal: *ordinal,
                };
                match &state {
                    Some(s) => analysis.join(inst, s, &exits, &ctx, report),
                    None => {
                        analysis.visit_unreachable(inst, &ctx, report);
                        None
                    }
                }
            }
            _ => {
                let ctx = Ctx {
                    path: &path,
                    ordinal: *ordinal,
                };
                *ordinal += 1;
                match &cur {
                    Some(s) => analysis.transfer(inst, s, &ctx, report),
                    None => {
                        analysis.visit_unreachable(inst, &ctx, report);
                        None
                    }
                }
            }
        };
        if reachable && out.is_none() && cut_at.is_none() {
            cut_at = Some(i);
        }
        cur = out;
    }
    if top_level {
        if let Some(i) = cut_at {
            analysis.chain_cut(insts, i, report);
        }
    }
    cur
}
