//! Pass 5 (optional) — spec conformance.
//!
//! When the network spec a program claims to implement is available, this
//! pass checks the program against it instruction-by-instruction: same
//! input geometry, same layer count and order, same names, and same layer
//! parameters. It catches compiler bugs and hand-edited programs drifting
//! from their source network.

use crate::diag::{DiagClass, Diagnostic, Report, Severity};
use crate::{Instruction, Program};
use redeye_nn::{LayerSpec, NetworkSpec};

fn err(code: &'static str, message: String) -> Diagnostic {
    Diagnostic::new(Severity::Error, DiagClass::SpecConformance, code, message)
}

pub(crate) fn run(program: &Program, spec: &NetworkSpec, report: &mut Report) {
    if program.input != spec.input {
        report.push(err(
            "RE0504",
            format!(
                "program input {:?} does not match spec `{}` input {:?}",
                program.input, spec.name, spec.input
            ),
        ));
    }
    check_chain(&program.instructions, &spec.layers, &[], report);
}

fn check_chain(insts: &[Instruction], layers: &[LayerSpec], prefix: &[usize], report: &mut Report) {
    if insts.len() != layers.len() {
        report.push(
            err(
                "RE0501",
                format!(
                    "program has {} instruction(s) where the spec has {} layer(s)",
                    insts.len(),
                    layers.len()
                ),
            )
            .at_path(prefix),
        );
    }
    for (i, (inst, layer)) in insts.iter().zip(layers.iter()).enumerate() {
        let mut path = prefix.to_vec();
        path.push(i);
        if inst.name() != layer.name() {
            report.push(
                err(
                    "RE0502",
                    format!(
                        "instruction `{}` does not match spec layer `{}` at this position",
                        inst.name(),
                        layer.name()
                    ),
                )
                .at_layer(inst.name())
                .at_path(&path),
            );
            continue;
        }
        check_pair(inst, layer, &path, report);
    }
}

/// Compares one instruction against the spec layer of the same position.
fn check_pair(inst: &Instruction, layer: &LayerSpec, path: &[usize], report: &mut Report) {
    let mismatch = |report: &mut Report, detail: String| {
        report.push(
            err(
                "RE0503",
                format!(
                    "instruction `{}` diverges from its spec layer: {detail}",
                    inst.name()
                ),
            )
            .at_layer(inst.name())
            .at_path(path),
        );
    };
    match (inst, layer) {
        (
            Instruction::Conv {
                out_c,
                kernel,
                stride,
                pad,
                relu,
                ..
            },
            LayerSpec::Conv {
                out_c: s_out_c,
                kernel: s_kernel,
                stride: s_stride,
                pad: s_pad,
                relu: s_relu,
                ..
            },
        ) => {
            if (out_c, kernel, stride, pad, relu) != (s_out_c, s_kernel, s_stride, s_pad, s_relu) {
                mismatch(
                    report,
                    format!(
                        "conv {out_c}c k{kernel} s{stride} p{pad} relu={relu} vs spec \
                         {s_out_c}c k{s_kernel} s{s_stride} p{s_pad} relu={s_relu}"
                    ),
                );
            }
        }
        (
            Instruction::MaxPool {
                window,
                stride,
                pad,
                ..
            },
            LayerSpec::MaxPool {
                window: s_window,
                stride: s_stride,
                pad: s_pad,
                ..
            },
        )
        | (
            Instruction::AvgPool {
                window,
                stride,
                pad,
                ..
            },
            LayerSpec::AvgPool {
                window: s_window,
                stride: s_stride,
                pad: s_pad,
                ..
            },
        ) => {
            if (window, stride, pad) != (s_window, s_stride, s_pad) {
                mismatch(
                    report,
                    format!(
                        "pool w{window} s{stride} p{pad} vs spec w{s_window} s{s_stride} p{s_pad}"
                    ),
                );
            }
        }
        (
            Instruction::Lrn {
                size,
                alpha,
                beta,
                k,
                ..
            },
            LayerSpec::Lrn {
                size: s_size,
                alpha: s_alpha,
                beta: s_beta,
                k: s_k,
                ..
            },
        ) => {
            if size != s_size || alpha != s_alpha || beta != s_beta || k != s_k {
                mismatch(report, "LRN parameters differ".into());
            }
        }
        (
            Instruction::Inception { branches, .. },
            LayerSpec::Inception {
                branches: s_branches,
                ..
            },
        ) => {
            if branches.len() != s_branches.len() {
                mismatch(
                    report,
                    format!(
                        "{} branches vs spec {} branches",
                        branches.len(),
                        s_branches.len()
                    ),
                );
                return;
            }
            for (bi, (b, sb)) in branches.iter().zip(s_branches.iter()).enumerate() {
                let mut bpath = path.to_vec();
                bpath.push(bi);
                check_chain(b, sb, &bpath, report);
            }
        }
        _ => mismatch(
            report,
            format!(
                "instruction kind does not implement spec layer `{}`",
                layer.name()
            ),
        ),
    }
}
