//! Pass 3 — noise-admission feasibility.
//!
//! Each analog layer's programmed SNR must lie inside the damping circuit's
//! physically admissible band, and the readout bit depth must be realizable
//! by the SAR array. Beyond hard admissibility, the pass warns about *wasted
//! energy*: a layer whose SNR budget is tighter (higher) than what its
//! upstream producers already limited the signal to burns damping
//! capacitance (E ∝ 1/V̄n²) without improving output fidelity, and an ADC
//! bit depth far finer than the chain SNR burns conversion energy (E ∝ 2ⁿ)
//! digitizing noise.

use crate::diag::{DiagClass, Diagnostic, Report, Severity};
use crate::{Instruction, Program};
use redeye_analog::{
    resolution_admissible, snr_admissible, snr_in_tunable_band, SnrDb, MAX_RESOLUTION,
    SNR_ADMISSIBLE_MAX, SNR_ADMISSIBLE_MIN, SNR_TUNABLE_MAX, SNR_TUNABLE_MIN,
};

/// Hysteresis before an SNR step-up is reported as wasted energy.
const WASTE_MARGIN_DB: f64 = 0.5;

/// Headroom before the ADC is reported as over-resolved vs. the chain SNR
/// (12 dB ≈ two SAR bits).
const ADC_HEADROOM_DB: f64 = 12.0;

fn diag(severity: Severity, code: &'static str, message: String) -> Diagnostic {
    Diagnostic::new(severity, DiagClass::NoiseAdmission, code, message)
}

pub(crate) fn run(program: &Program, report: &mut Report) {
    let mut min_upstream = f64::INFINITY;
    walk(
        &program.instructions,
        &mut Vec::new(),
        &mut min_upstream,
        report,
    );

    let bits = program.adc_bits;
    if resolution_admissible(bits) {
        // Ideal n-bit quantization SNR: 6.02·n + 1.76 dB.
        let quant_snr = 6.02 * f64::from(bits) + 1.76;
        if min_upstream.is_finite() && quant_snr > min_upstream + ADC_HEADROOM_DB {
            report.push(diag(
                Severity::Warning,
                "RE0305",
                format!(
                    "{bits}-bit readout quantizes at ≈{quant_snr:.1} dB but the analog chain is \
                     already limited to ≈{min_upstream:.1} dB; conversion energy (E ∝ 2^n) is \
                     spent digitizing noise"
                ),
            ));
        }
    } else {
        report.push(diag(
            Severity::Error,
            "RE0304",
            format!(
                "ADC bit depth {bits} outside the SAR array's 1..={MAX_RESOLUTION} range \
                 (MSB-cutting can only remove capacitors)"
            ),
        ));
    }
}

fn walk(insts: &[Instruction], path: &mut Vec<usize>, min_upstream: &mut f64, report: &mut Report) {
    for (i, inst) in insts.iter().enumerate() {
        path.push(i);
        match inst {
            Instruction::Conv { name, snr, .. }
            | Instruction::AvgPool { name, snr, .. }
            | Instruction::Lrn { name, snr, .. } => {
                check_layer(name, *snr, path, min_upstream, report);
            }
            Instruction::MaxPool { .. } => {}
            Instruction::Inception { branches, .. } => {
                let base = *min_upstream;
                let mut merged = f64::INFINITY;
                for (bi, branch) in branches.iter().enumerate() {
                    let mut branch_min = base;
                    path.push(bi);
                    walk(branch, path, &mut branch_min, report);
                    path.pop();
                    merged = merged.min(branch_min);
                }
                if merged.is_finite() {
                    *min_upstream = merged;
                }
            }
        }
        path.pop();
    }
}

fn check_layer(
    name: &str,
    snr: SnrDb,
    path: &[usize],
    min_upstream: &mut f64,
    report: &mut Report,
) {
    if !snr_admissible(snr) {
        report.push(
            diag(
                Severity::Error,
                "RE0301",
                format!(
                    "layer `{name}` programs {snr} outside the damping circuit's admissible \
                     [{}, {}] band",
                    SNR_ADMISSIBLE_MIN, SNR_ADMISSIBLE_MAX
                ),
            )
            .at_layer(name)
            .at_path(path),
        );
        return;
    }
    if !snr_in_tunable_band(snr) {
        report.push(
            diag(
                Severity::Warning,
                "RE0302",
                format!(
                    "layer `{name}` programs {snr} outside the Table I tunable damping band \
                     [{}, {}]",
                    SNR_TUNABLE_MIN, SNR_TUNABLE_MAX
                ),
            )
            .at_layer(name)
            .at_path(path),
        );
    }
    if snr.db() > *min_upstream + WASTE_MARGIN_DB {
        report.push(
            diag(
                Severity::Warning,
                "RE0303",
                format!(
                    "layer `{name}` runs at {snr} but an upstream producer already limits the \
                     signal to ≈{min_upstream:.1} dB",
                ),
            )
            .at_layer(name)
            .at_path(path)
            .with_note(
                "the looser upstream budget caps end-to-end fidelity; the extra damping \
                 capacitance here burns energy (E ∝ 1/V̄n²) without buying accuracy",
            ),
        );
    }
    *min_upstream = min_upstream.min(snr.db());
}
