//! Pass 3 — noise-admission feasibility.
//!
//! Each analog layer's programmed SNR must lie inside the damping circuit's
//! physically admissible band, and the readout bit depth must be realizable
//! by the SAR array. Beyond hard admissibility, the pass warns about *wasted
//! energy*: a layer whose SNR budget is tighter (higher) than what its
//! upstream producers already limited the signal to burns damping
//! capacitance (E ∝ 1/V̄n²) without improving output fidelity, and an ADC
//! bit depth far finer than the chain SNR burns conversion energy (E ∝ 2ⁿ)
//! digitizing noise.
//!
//! Runs on the shared [`crate::dataflow`] engine with the minimum upstream
//! SNR (in dB) as the abstract state; the inception join takes the minimum
//! over branch exits, since the concatenated output is only as clean as its
//! noisiest branch.

use crate::dataflow::{self, Ctx, ForwardAnalysis};
use crate::diag::{DiagClass, Diagnostic, Report, Severity};
use crate::{Instruction, Program};
use redeye_analog::{
    resolution_admissible, snr_admissible, snr_in_tunable_band, SnrDb, MAX_RESOLUTION,
    SNR_ADMISSIBLE_MAX, SNR_ADMISSIBLE_MIN, SNR_TUNABLE_MAX, SNR_TUNABLE_MIN,
};

/// Hysteresis before an SNR step-up is reported as wasted energy.
const WASTE_MARGIN_DB: f64 = 0.5;

/// Headroom before the ADC is reported as over-resolved vs. the chain SNR
/// (12 dB ≈ two SAR bits).
const ADC_HEADROOM_DB: f64 = 12.0;

fn diag(severity: Severity, code: &'static str, message: String) -> Diagnostic {
    Diagnostic::new(severity, DiagClass::NoiseAdmission, code, message)
}

pub(crate) fn run(program: &Program, report: &mut Report) {
    let mut analysis = NoiseAnalysis;
    let min_upstream = dataflow::run(program, Some(f64::INFINITY), &mut analysis, report)
        .expect("noise dataflow never cuts");

    let bits = program.adc_bits;
    if resolution_admissible(bits) {
        // Ideal n-bit quantization SNR: 6.02·n + 1.76 dB.
        let quant_snr = 6.02 * f64::from(bits) + 1.76;
        if min_upstream.is_finite() && quant_snr > min_upstream + ADC_HEADROOM_DB {
            report.push(diag(
                Severity::Warning,
                "RE0305",
                format!(
                    "{bits}-bit readout quantizes at ≈{quant_snr:.1} dB but the analog chain is \
                     already limited to ≈{min_upstream:.1} dB; conversion energy (E ∝ 2^n) is \
                     spent digitizing noise"
                ),
            ));
        }
    } else {
        report.push(diag(
            Severity::Error,
            "RE0304",
            format!(
                "ADC bit depth {bits} outside the SAR array's 1..={MAX_RESOLUTION} range \
                 (MSB-cutting can only remove capacitors)"
            ),
        ));
    }
}

/// State: the minimum SNR (dB) any upstream producer has limited the signal
/// to; `f64::INFINITY` before the first noisy stage.
struct NoiseAnalysis;

impl ForwardAnalysis<'_> for NoiseAnalysis {
    type State = f64;

    fn transfer(
        &mut self,
        inst: &Instruction,
        state: &f64,
        ctx: &Ctx<'_>,
        report: &mut Report,
    ) -> Option<f64> {
        match inst {
            Instruction::Conv { name, snr, .. }
            | Instruction::AvgPool { name, snr, .. }
            | Instruction::Lrn { name, snr, .. } => {
                Some(check_layer(name, *snr, *state, ctx.path, report))
            }
            // The comparator selects, it does not re-damp: SNR flows through.
            Instruction::MaxPool { .. } => Some(*state),
            Instruction::Inception { .. } => unreachable!("engine routes inception through join"),
        }
    }

    fn join(
        &mut self,
        _inst: &Instruction,
        state: &f64,
        exits: &[Option<f64>],
        _ctx: &Ctx<'_>,
        _report: &mut Report,
    ) -> Option<f64> {
        let merged = exits
            .iter()
            .flatten()
            .fold(f64::INFINITY, |acc, &e| acc.min(e));
        if merged.is_finite() {
            Some(merged)
        } else {
            Some(*state)
        }
    }
}

fn check_layer(
    name: &str,
    snr: SnrDb,
    min_upstream: f64,
    path: &[usize],
    report: &mut Report,
) -> f64 {
    if !snr_admissible(snr) {
        report.push(
            diag(
                Severity::Error,
                "RE0301",
                format!(
                    "layer `{name}` programs {snr} outside the damping circuit's admissible \
                     [{}, {}] band",
                    SNR_ADMISSIBLE_MIN, SNR_ADMISSIBLE_MAX
                ),
            )
            .at_layer(name)
            .at_path(path),
        );
        return min_upstream;
    }
    if !snr_in_tunable_band(snr) {
        report.push(
            diag(
                Severity::Warning,
                "RE0302",
                format!(
                    "layer `{name}` programs {snr} outside the Table I tunable damping band \
                     [{}, {}]",
                    SNR_TUNABLE_MIN, SNR_TUNABLE_MAX
                ),
            )
            .at_layer(name)
            .at_path(path),
        );
    }
    if snr.db() > min_upstream + WASTE_MARGIN_DB {
        report.push(
            diag(
                Severity::Warning,
                "RE0303",
                format!(
                    "layer `{name}` runs at {snr} but an upstream producer already limits the \
                     signal to ≈{min_upstream:.1} dB",
                ),
            )
            .at_layer(name)
            .at_path(path)
            .with_note(
                "the looser upstream budget caps end-to-end fidelity; the extra damping \
                 capacitance here burns energy (E ∝ 1/V̄n²) without buying accuracy",
            ),
        );
    }
    min_upstream.min(snr.db())
}
