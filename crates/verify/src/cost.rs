//! Pass 7 — static cost model (RE07xx).
//!
//! Recomputes, from shapes alone, exactly the per-op `count × unit-cost`
//! products the executor's [`EnergyLedger`] charges at run time — same
//! calibration constants (`redeye_analog::calib`), same damping energy
//! scale, same column-parallel timing divisor, same depth-first
//! accumulation order. The resulting *nominal* estimate therefore matches
//! a real `FrameEngine` ledger bit-for-bit (the executor's charges are a
//! pure function of the program; noise never reaches the ledger).
//!
//! Around the nominal, the pass brackets the cost across every process
//! corner (`redeye_analog::ProcessCorner::ALL`): analog and controller
//! energy scale by the corner's power factor, time (and with it the
//! time-proportional controller energy) by its timing factor. The `lower ≤
//! nominal = ledger ≤ upper` bracket is the differential contract the
//! static-vs-dynamic test harness enforces.
//!
//! Against a configurable [`CostBudget`] the pass emits:
//!
//! - `RE0701` (error): even the lower energy bound exceeds the cap.
//! - `RE0702` (warning): only the upper energy bound exceeds the cap.
//! - `RE0703` (error): even the lower frame-time bound exceeds the cap.
//! - `RE0704` (warning): only the upper frame-time bound exceeds the cap.
//!
//! [`EnergyLedger`]: https://docs.rs/redeye-core

use crate::diag::{DiagClass, Diagnostic, Report, Severity};
use crate::shape::Site;
use crate::{Instruction, Program};
use redeye_analog::calib::{
    COMPARATOR_DECISION_TIME, COMPARATOR_ENERGY, CONTROLLER_CLOCK_MHZ, CONTROLLER_UW_PER_MHZ,
    MAC_ENERGY_40DB, MAC_SETTLE_TIME_40DB, MEMORY_WRITE_ENERGY_40DB,
};
use redeye_analog::{
    resolution_admissible, DampingConfig, Joules, ProcessCorner, SarAdc, Seconds, SnrDb, Watts,
};
use redeye_tensor::ConvGeom;
use serde::Serialize;

/// Per-frame cost caps for the RE07xx budget checks. Unset caps are not
/// checked.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize)]
pub struct CostBudget {
    /// Maximum per-frame energy (analog + controller).
    pub max_frame_energy: Option<Joules>,
    /// Maximum per-frame latency.
    pub max_frame_time: Option<Seconds>,
}

/// One point of the static cost model: per-frame energy and latency.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct CostEstimate {
    /// Per-frame energy, controller included.
    pub energy: Joules,
    /// Per-frame latency.
    pub time: Seconds,
}

/// The static cost bounds for one program, plus the op counts they were
/// derived from (these equal the dynamic ledger's counters exactly).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct CostBounds {
    /// Minimum over all process corners.
    pub lower: CostEstimate,
    /// The typical-typical corner — equals the dynamic ledger bit-for-bit.
    pub nominal: CostEstimate,
    /// Maximum over all process corners.
    pub upper: CostEstimate,
    /// Analog MAC operations.
    pub macs: u64,
    /// Comparator decisions.
    pub comparisons: u64,
    /// Feature SRAM writes.
    pub writes: u64,
    /// SAR conversions.
    pub conversions: u64,
    /// Digital readout volume in bits.
    pub readout_bits: u64,
}

fn diag(severity: Severity, code: &'static str, message: String) -> Diagnostic {
    Diagnostic::new(severity, DiagClass::CostModel, code, message)
}

/// Runs the pass: computes bounds from the shape pass's sites and checks
/// them against `budget`. Returns `None` (and emits no RE07xx diagnostics)
/// when the program's cost is not statically derivable — the shape or noise
/// passes have already reported why.
pub(crate) fn run(
    program: &Program,
    sites: &[Site<'_>],
    final_shape: Option<[usize; 3]>,
    budget: &CostBudget,
    report: &mut Report,
) -> Option<CostBounds> {
    let bounds = compute(program, sites, final_shape)?;
    if let Some(cap) = budget.max_frame_energy {
        let (lo, hi, cap_mj) = (
            bounds.lower.energy.millis(),
            bounds.upper.energy.millis(),
            cap.millis(),
        );
        if bounds.lower.energy > cap {
            report.push(
                diag(
                    Severity::Error,
                    "RE0701",
                    format!(
                        "frame energy provably exceeds the {cap_mj:.6} mJ budget: corner \
                         bounds [{lo:.6}, {hi:.6}] mJ"
                    ),
                )
                .with_note(
                    "the bounds bracket the dynamic ledger across all process corners \
                     (TT/FF/SS/FS/SF); even the most favorable corner is over budget",
                ),
            );
        } else if bounds.upper.energy > cap {
            report.push(
                diag(
                    Severity::Warning,
                    "RE0702",
                    format!(
                        "frame energy may exceed the {cap_mj:.6} mJ budget at unfavorable \
                         process corners: bounds [{lo:.6}, {hi:.6}] mJ"
                    ),
                )
                .with_note("the typical corner fits, but slow/fast-corner devices will not"),
            );
        }
    }
    if let Some(cap) = budget.max_frame_time {
        let (lo, hi, cap_ms) = (
            bounds.lower.time.millis(),
            bounds.upper.time.millis(),
            cap.millis(),
        );
        if bounds.lower.time > cap {
            report.push(
                diag(
                    Severity::Error,
                    "RE0703",
                    format!(
                        "frame latency provably exceeds the {cap_ms:.6} ms budget: corner \
                         bounds [{lo:.6}, {hi:.6}] ms"
                    ),
                )
                .with_note(
                    "column-parallel settling, comparator, and SAR time alone exceed the cap \
                     at every process corner",
                ),
            );
        } else if bounds.upper.time > cap {
            report.push(
                diag(
                    Severity::Warning,
                    "RE0704",
                    format!(
                        "frame latency may exceed the {cap_ms:.6} ms budget at unfavorable \
                         process corners: bounds [{lo:.6}, {hi:.6}] ms"
                    ),
                )
                .with_note("the typical corner fits, but slow-corner devices will not"),
            );
        }
    }
    Some(bounds)
}

/// Accumulates the nominal ledger in executor order, then brackets it over
/// the process corners.
pub(crate) fn compute(
    program: &Program,
    sites: &[Site<'_>],
    final_shape: Option<[usize; 3]>,
) -> Option<CostBounds> {
    let out_shape = final_shape?;
    if !resolution_admissible(program.adc_bits) {
        return None;
    }
    // The executor parallelizes across the *input width* worth of column
    // slices (gain staging maps the image onto the array).
    let columns = program.input[2].max(1) as f64;

    let mut processing = Joules::zero();
    let mut pooling = Joules::zero();
    let mut memory = Joules::zero();
    let mut quantization = Joules::zero();
    let mut elapsed = Seconds::zero();
    let (mut macs_total, mut comparisons, mut writes_total) = (0u64, 0u64, 0u64);

    let mut charge_macs =
        |processing: &mut Joules, elapsed: &mut Seconds, macs: u64, snr: SnrDb| {
            let scale = DampingConfig::from_snr(snr).energy_scale();
            *processing += MAC_ENERGY_40DB * (macs as f64 * scale);
            *elapsed += MAC_SETTLE_TIME_40DB * (macs as f64 / columns);
            macs_total += macs;
        };
    let mut charge_writes = |memory: &mut Joules, writes: u64, snr: SnrDb| {
        let scale = DampingConfig::from_snr(snr).energy_scale();
        *memory += MEMORY_WRITE_ENERGY_40DB * (writes as f64 * scale);
        writes_total += writes;
    };

    // Sites are in depth-first visit order — the order the executor runs
    // (and charges) instructions in, which makes the floating-point
    // accumulation below reproduce the ledger exactly.
    for site in sites {
        let in_shape = site.in_shape?;
        let out_len = match site.inst {
            Instruction::Inception { .. } => continue, // branches charge themselves
            _ => {
                let [c, h, w] = site.out_shape?;
                (c * h * w) as u64
            }
        };
        match site.inst {
            Instruction::Conv {
                out_c,
                kernel,
                stride,
                pad,
                snr,
                ..
            } => {
                let [c, h, w] = in_shape;
                let geom = ConvGeom::new(c, h, w, *kernel, *kernel, *stride, *pad).ok()?;
                charge_macs(&mut processing, &mut elapsed, geom.macs(*out_c), *snr);
                charge_writes(&mut memory, out_len, *snr);
            }
            Instruction::MaxPool { window, .. } => {
                // Fixed comparison schedule: window²−1 decisions per output,
                // padding taps included.
                let decisions = out_len * ((window * window) as u64 - 1);
                pooling += COMPARATOR_ENERGY * decisions as f64;
                comparisons += decisions;
                elapsed += COMPARATOR_DECISION_TIME * (decisions as f64 / columns);
                charge_writes(&mut memory, out_len, SnrDb::new(40.0));
            }
            Instruction::AvgPool { window, snr, .. } => {
                let macs = out_len * (*window * *window) as u64;
                charge_macs(&mut processing, &mut elapsed, macs, *snr);
                charge_writes(&mut memory, out_len, *snr);
            }
            Instruction::Lrn { size, snr, .. } => {
                let macs = out_len * (*size as u64 + 1);
                charge_macs(&mut processing, &mut elapsed, macs, *snr);
                charge_writes(&mut memory, out_len, *snr);
            }
            Instruction::Inception { .. } => unreachable!(),
        }
    }

    // The SAR readout of the final feature map.
    let template = SarAdc::new(program.adc_bits).ok()?;
    let n = out_shape[0] * out_shape[1] * out_shape[2];
    quantization += template.energy_per_conversion() * n as f64;
    elapsed += template.time_per_conversion() * (n as f64 / columns);
    let conversions = n as u64;
    let readout_bits = conversions * u64::from(program.adc_bits);

    // Controller energy is time-proportional (idle + sequencing power).
    let controller_power =
        Watts::new(CONTROLLER_UW_PER_MHZ * 1e-6 * CONTROLLER_CLOCK_MHZ * 1e6 / 1e6);
    let analog = processing + pooling + memory + quantization;
    let controller = controller_power * elapsed;
    let nominal = CostEstimate {
        energy: analog + controller,
        time: elapsed,
    };

    let (mut lo_e, mut hi_e) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut lo_t, mut hi_t) = (f64::INFINITY, f64::NEG_INFINITY);
    for corner in ProcessCorner::ALL {
        let pf = corner.power_factor();
        let tf = corner.timing_factor();
        let time = elapsed.value() * tf;
        let energy = analog.value() * pf + controller_power.value() * pf * time;
        lo_e = lo_e.min(energy);
        hi_e = hi_e.max(energy);
        lo_t = lo_t.min(time);
        hi_t = hi_t.max(time);
    }

    Some(CostBounds {
        lower: CostEstimate {
            energy: Joules::new(lo_e),
            time: Seconds::new(lo_t),
        },
        nominal,
        upper: CostEstimate {
            energy: Joules::new(hi_e),
            time: Seconds::new(hi_t),
        },
        macs: macs_total,
        comparisons,
        writes: writes_total,
        conversions,
        readout_bits,
    })
}
