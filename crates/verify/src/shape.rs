//! Pass 1 — shape dataflow.
//!
//! Symbolically propagates the `(C, H, W)` activation shape through every
//! instruction, mirroring the executor's geometry exactly (floor rounding
//! for convolutions, Caffe ceil rounding for pools). Non-chaining
//! dimensions, degenerate outputs, kernels that over-run the padded input,
//! and inputs wider than the physical column array are all rejected before
//! anything executes.
//!
//! The pass runs on the shared [`crate::dataflow`] engine and additionally
//! records a [`Site`] per visited instruction (nested inception
//! instructions included) carrying the inferred input/output shapes — the
//! site list is the substrate the code-range, resource, and cost passes
//! consume.

use crate::dataflow::{self, Ctx, ForwardAnalysis};
use crate::diag::{DiagClass, Diagnostic, Report, Severity};
use crate::limits::ResourceLimits;
use crate::{Instruction, Program};
use redeye_tensor::{ConvGeom, PoolGeom};

/// One instruction visit with its inferred dataflow context.
#[derive(Debug)]
pub(crate) struct Site<'p> {
    /// The visited instruction.
    pub inst: &'p Instruction,
    /// Index path into the program (see [`Diagnostic::path`]).
    pub path: Vec<usize>,
    /// Depth-first stage ordinal (executor noise-stream numbering).
    #[allow(dead_code)]
    pub ordinal: usize,
    /// Inferred input shape, when the dataflow reaches this instruction.
    pub in_shape: Option<[usize; 3]>,
    /// Inferred output shape, when the instruction can execute.
    pub out_shape: Option<[usize; 3]>,
}

fn err(code: &'static str, message: String) -> Diagnostic {
    Diagnostic::new(Severity::Error, DiagClass::ShapeDataflow, code, message)
}

/// Runs the pass: emits diagnostics into `report` and returns the visited
/// sites plus the program's final (readout) shape when derivable.
pub(crate) fn analyze<'p>(
    program: &'p Program,
    limits: &ResourceLimits,
    report: &mut Report,
) -> (Vec<Site<'p>>, Option<[usize; 3]>) {
    let [c, h, w] = program.input;
    let mut start = Some(program.input);
    if c == 0 || h == 0 || w == 0 {
        report.push(err(
            "RE0107",
            format!("program input {c}x{h}x{w} has a zero dimension"),
        ));
        start = None;
    }
    if w > limits.columns {
        report.push(
            err(
                "RE0106",
                format!(
                    "input width {w} over-runs the {}-column sensor array",
                    limits.columns
                ),
            )
            .with_note(
                "each image column maps onto one column slice; wider inputs cannot be captured",
            ),
        );
    }
    let mut analysis = ShapeAnalysis { sites: Vec::new() };
    let final_shape = dataflow::run(program, start, &mut analysis, report);
    (analysis.sites, final_shape)
}

struct ShapeAnalysis<'p> {
    sites: Vec<Site<'p>>,
}

impl<'p> ForwardAnalysis<'p> for ShapeAnalysis<'p> {
    type State = [usize; 3];

    fn transfer(
        &mut self,
        inst: &'p Instruction,
        state: &[usize; 3],
        ctx: &Ctx<'_>,
        report: &mut Report,
    ) -> Option<[usize; 3]> {
        let shape = *state;
        let [c, h, w] = shape;
        let out = match inst {
            Instruction::Conv {
                name,
                out_c,
                kernel,
                stride,
                pad,
                ..
            } => {
                if *out_c == 0 {
                    report.push(
                        err("RE0102", format!("conv `{name}` has zero output channels"))
                            .at_layer(name)
                            .at_path(ctx.path),
                    );
                    None
                } else {
                    match ConvGeom::new(c, h, w, *kernel, *kernel, *stride, *pad) {
                        Ok(geom) => Some([*out_c, geom.out_h(), geom.out_w()]),
                        Err(e) => {
                            report.push(
                                err(
                                    "RE0101",
                                    format!("conv `{name}` cannot apply to {c}x{h}x{w}: {e}"),
                                )
                                .at_layer(name)
                                .at_path(ctx.path),
                            );
                            None
                        }
                    }
                }
            }
            Instruction::MaxPool {
                name,
                window,
                stride,
                pad,
            }
            | Instruction::AvgPool {
                name,
                window,
                stride,
                pad,
                ..
            } => match PoolGeom::new(c, h, w, *window, *stride, *pad) {
                Ok(geom) => Some([c, geom.out_h(), geom.out_w()]),
                Err(e) => {
                    report.push(
                        err(
                            "RE0101",
                            format!("pool `{name}` cannot apply to {c}x{h}x{w}: {e}"),
                        )
                        .at_layer(name)
                        .at_path(ctx.path),
                    );
                    None
                }
            },
            Instruction::Lrn { name, size, .. } => {
                if *size == 0 {
                    report.push(
                        err(
                            "RE0101",
                            format!("LRN `{name}` channel window must be positive"),
                        )
                        .at_layer(name)
                        .at_path(ctx.path),
                    );
                    // Shape is unaffected by LRN; keep analyzing downstream.
                }
                Some(shape)
            }
            Instruction::Inception { .. } => unreachable!("engine routes inception through join"),
        };
        self.sites.push(Site {
            inst,
            path: ctx.path.to_vec(),
            ordinal: ctx.ordinal,
            in_shape: Some(shape),
            out_shape: out,
        });
        out
    }

    fn join(
        &mut self,
        inst: &'p Instruction,
        state: &[usize; 3],
        exits: &[Option<[usize; 3]>],
        ctx: &Ctx<'_>,
        report: &mut Report,
    ) -> Option<[usize; 3]> {
        let Instruction::Inception { name, branches } = inst else {
            unreachable!("join is only called on inception nodes")
        };
        let out = if branches.is_empty() {
            report.push(
                err("RE0104", format!("inception `{name}` has zero branches"))
                    .at_layer(name)
                    .at_path(ctx.path),
            );
            None
        } else {
            let mut out_c = 0usize;
            let mut out_hw: Option<(usize, usize)> = None;
            let mut ok = true;
            for (bi, bout) in exits.iter().enumerate() {
                match bout {
                    Some([bc, bh, bw]) => {
                        out_c += bc;
                        match out_hw {
                            None => out_hw = Some((*bh, *bw)),
                            Some((ph, pw)) if (ph, pw) != (*bh, *bw) => {
                                let mut bpath = ctx.path.to_vec();
                                bpath.push(bi);
                                report.push(
                                    err(
                                        "RE0103",
                                        format!(
                                            "inception `{name}` branch {bi} output {bh}x{bw} \
                                             does not chain with {ph}x{pw} from earlier branches"
                                        ),
                                    )
                                    .at_layer(name)
                                    .at_path(&bpath)
                                    .with_note(
                                        "concatenation along channels requires every branch to \
                                         agree on the spatial extent",
                                    ),
                                );
                                ok = false;
                            }
                            Some(_) => {}
                        }
                    }
                    None => ok = false,
                }
            }
            if ok {
                let (fh, fw) = out_hw.expect("non-empty branches");
                Some([out_c, fh, fw])
            } else {
                None
            }
        };
        self.sites.push(Site {
            inst,
            path: ctx.path.to_vec(),
            ordinal: ctx.ordinal,
            in_shape: Some(*state),
            out_shape: out,
        });
        out
    }

    fn visit_unreachable(&mut self, inst: &'p Instruction, ctx: &Ctx<'_>, _report: &mut Report) {
        self.sites.push(Site {
            inst,
            path: ctx.path.to_vec(),
            ordinal: ctx.ordinal,
            in_shape: None,
            out_shape: None,
        });
    }

    fn chain_cut(&mut self, insts: &'p [Instruction], cut: usize, report: &mut Report) {
        if cut + 1 < insts.len() {
            let names: Vec<&str> = insts[cut + 1..].iter().map(Instruction::name).collect();
            report.push(
                Diagnostic::new(
                    Severity::Note,
                    DiagClass::ShapeDataflow,
                    "RE0105",
                    format!(
                        "{} instruction(s) unreachable after the dataflow cut at `{}`: {}",
                        names.len(),
                        insts[cut].name(),
                        names.join(", ")
                    ),
                )
                .at_path(&[cut + 1]),
            );
        }
    }
}
