//! Pass 1 — shape dataflow.
//!
//! Symbolically propagates the `(C, H, W)` activation shape through every
//! instruction, mirroring the executor's geometry exactly (floor rounding
//! for convolutions, Caffe ceil rounding for pools). Non-chaining
//! dimensions, degenerate outputs, kernels that over-run the padded input,
//! and inputs wider than the physical column array are all rejected before
//! anything executes.
//!
//! The pass doubles as the dataflow engine for the other passes: it returns
//! a [`Site`] per visited instruction (nested inception instructions
//! included) carrying the inferred input/output shapes.

use crate::diag::{DiagClass, Diagnostic, Report, Severity};
use crate::limits::ResourceLimits;
use crate::{Instruction, Program};
use redeye_tensor::{ConvGeom, PoolGeom};

/// One instruction visit with its inferred dataflow context.
#[derive(Debug)]
pub(crate) struct Site<'p> {
    /// The visited instruction.
    pub inst: &'p Instruction,
    /// Index path into the program (see [`Diagnostic::path`]).
    pub path: Vec<usize>,
    /// Inferred input shape, when the dataflow reaches this instruction.
    pub in_shape: Option<[usize; 3]>,
}

fn err(code: &'static str, message: String) -> Diagnostic {
    Diagnostic::new(Severity::Error, DiagClass::ShapeDataflow, code, message)
}

/// Runs the pass: emits diagnostics into `report` and returns the visited
/// sites plus the program's final (readout) shape when derivable.
pub(crate) fn analyze<'p>(
    program: &'p Program,
    limits: &ResourceLimits,
    report: &mut Report,
) -> (Vec<Site<'p>>, Option<[usize; 3]>) {
    let [c, h, w] = program.input;
    let mut start = Some(program.input);
    if c == 0 || h == 0 || w == 0 {
        report.push(err(
            "RE0107",
            format!("program input {c}x{h}x{w} has a zero dimension"),
        ));
        start = None;
    }
    if w > limits.columns {
        report.push(
            err(
                "RE0106",
                format!(
                    "input width {w} over-runs the {}-column sensor array",
                    limits.columns
                ),
            )
            .with_note(
                "each image column maps onto one column slice; wider inputs cannot be captured",
            ),
        );
    }
    let mut sites = Vec::new();
    let final_shape = walk_chain(&program.instructions, &[], start, &mut sites, report, true);
    (sites, final_shape)
}

/// Propagates shapes through a linear chain, pushing one [`Site`] per
/// instruction. Returns the chain's output shape, or `None` once an error
/// cuts the dataflow. At the top level (`note_unreachable`), instructions
/// past the cut are reported as unreachable before the readout.
fn walk_chain<'p>(
    insts: &'p [Instruction],
    prefix: &[usize],
    start: Option<[usize; 3]>,
    sites: &mut Vec<Site<'p>>,
    report: &mut Report,
    note_unreachable: bool,
) -> Option<[usize; 3]> {
    let mut cur = start;
    let mut cut_at: Option<usize> = None;
    for (i, inst) in insts.iter().enumerate() {
        let mut path = prefix.to_vec();
        path.push(i);
        let out = match cur {
            Some(shape) => transfer(inst, shape, &path, sites, report),
            None => {
                visit_unknown(inst, &path, sites);
                None
            }
        };
        if cur.is_some() && out.is_none() && cut_at.is_none() {
            cut_at = Some(i);
        }
        sites.push(Site {
            inst,
            path,
            in_shape: cur,
        });
        cur = out;
    }
    if note_unreachable {
        if let Some(i) = cut_at {
            if i + 1 < insts.len() {
                let names: Vec<&str> = insts[i + 1..].iter().map(Instruction::name).collect();
                report.push(
                    Diagnostic::new(
                        Severity::Note,
                        DiagClass::ShapeDataflow,
                        "RE0105",
                        format!(
                            "{} instruction(s) unreachable after the dataflow cut at `{}`: {}",
                            names.len(),
                            insts[i].name(),
                            names.join(", ")
                        ),
                    )
                    .at_path(&[i + 1]),
                );
            }
        }
    }
    cur
}

/// The per-instruction shape transfer function. Pushes nested sites for
/// inception branches; returns `None` when the instruction cannot execute.
fn transfer<'p>(
    inst: &'p Instruction,
    shape: [usize; 3],
    path: &[usize],
    sites: &mut Vec<Site<'p>>,
    report: &mut Report,
) -> Option<[usize; 3]> {
    let [c, h, w] = shape;
    match inst {
        Instruction::Conv {
            name,
            out_c,
            kernel,
            stride,
            pad,
            ..
        } => {
            if *out_c == 0 {
                report.push(
                    err("RE0102", format!("conv `{name}` has zero output channels"))
                        .at_layer(name)
                        .at_path(path),
                );
                return None;
            }
            match ConvGeom::new(c, h, w, *kernel, *kernel, *stride, *pad) {
                Ok(geom) => Some([*out_c, geom.out_h(), geom.out_w()]),
                Err(e) => {
                    report.push(
                        err(
                            "RE0101",
                            format!("conv `{name}` cannot apply to {c}x{h}x{w}: {e}"),
                        )
                        .at_layer(name)
                        .at_path(path),
                    );
                    None
                }
            }
        }
        Instruction::MaxPool {
            name,
            window,
            stride,
            pad,
        }
        | Instruction::AvgPool {
            name,
            window,
            stride,
            pad,
            ..
        } => match PoolGeom::new(c, h, w, *window, *stride, *pad) {
            Ok(geom) => Some([c, geom.out_h(), geom.out_w()]),
            Err(e) => {
                report.push(
                    err(
                        "RE0101",
                        format!("pool `{name}` cannot apply to {c}x{h}x{w}: {e}"),
                    )
                    .at_layer(name)
                    .at_path(path),
                );
                None
            }
        },
        Instruction::Lrn { name, size, .. } => {
            if *size == 0 {
                report.push(
                    err(
                        "RE0101",
                        format!("LRN `{name}` channel window must be positive"),
                    )
                    .at_layer(name)
                    .at_path(path),
                );
                // Shape is unaffected by LRN; keep analyzing downstream.
            }
            Some(shape)
        }
        Instruction::Inception { name, branches } => {
            if branches.is_empty() {
                report.push(
                    err("RE0104", format!("inception `{name}` has zero branches"))
                        .at_layer(name)
                        .at_path(path),
                );
                return None;
            }
            let mut out_c = 0usize;
            let mut out_hw: Option<(usize, usize)> = None;
            let mut ok = true;
            for (bi, branch) in branches.iter().enumerate() {
                let mut bpath = path.to_vec();
                bpath.push(bi);
                let bout = walk_chain(branch, &bpath, Some(shape), sites, report, false);
                match bout {
                    Some([bc, bh, bw]) => {
                        out_c += bc;
                        match out_hw {
                            None => out_hw = Some((bh, bw)),
                            Some((ph, pw)) if (ph, pw) != (bh, bw) => {
                                report.push(
                                    err(
                                        "RE0103",
                                        format!(
                                            "inception `{name}` branch {bi} output {bh}x{bw} \
                                             does not chain with {ph}x{pw} from earlier branches"
                                        ),
                                    )
                                    .at_layer(name)
                                    .at_path(&bpath)
                                    .with_note(
                                        "concatenation along channels requires every branch to \
                                         agree on the spatial extent",
                                    ),
                                );
                                ok = false;
                            }
                            Some(_) => {}
                        }
                    }
                    None => ok = false,
                }
            }
            if !ok {
                return None;
            }
            let (fh, fw) = out_hw.expect("non-empty branches");
            Some([out_c, fh, fw])
        }
    }
}

/// Visits instructions whose input shape is unknown (downstream of a cut),
/// so later passes can still run their shape-independent checks on them.
fn visit_unknown<'p>(inst: &'p Instruction, path: &[usize], sites: &mut Vec<Site<'p>>) {
    if let Instruction::Inception { branches, .. } = inst {
        for (bi, branch) in branches.iter().enumerate() {
            for (i, binst) in branch.iter().enumerate() {
                let mut bpath = path.to_vec();
                bpath.push(bi);
                bpath.push(i);
                visit_unknown(binst, &bpath, sites);
                sites.push(Site {
                    inst: binst,
                    path: bpath,
                    in_shape: None,
                });
            }
        }
    }
}
