//! Hardware resource envelopes the static passes check against.
//!
//! The defaults are the paper's design point (§V-D): a 9-kB kernel/program
//! SRAM, a 100-kB feature SRAM, and a 227-column sensor array. Callers with
//! a different floorplan (e.g. the stacked-die exploration) can substitute
//! their own limits.

use redeye_analog::calib::COLUMN_COUNT;

/// Resource limits of one RedEye floorplan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResourceLimits {
    /// Kernel (program) SRAM capacity in bytes (paper: 9 kB).
    pub kernel_sram_bytes: usize,
    /// Feature SRAM capacity in bytes (paper: 100 kB).
    pub feature_sram_bytes: usize,
    /// Physical column slices in the array (paper: 227).
    pub columns: usize,
}

impl Default for ResourceLimits {
    fn default() -> Self {
        ResourceLimits {
            kernel_sram_bytes: 9 * 1024,
            feature_sram_bytes: 100 * 1024,
            columns: COLUMN_COUNT,
        }
    }
}

impl ResourceLimits {
    /// Bytes needed to hold `values` features at `bits` each, bit-packed —
    /// the feature-SRAM accounting rule.
    pub fn feature_bytes_needed(values: u64, bits: u32) -> usize {
        ((values * u64::from(bits)).div_ceil(8)) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_the_paper_floorplan() {
        let l = ResourceLimits::default();
        assert_eq!(l.kernel_sram_bytes, 9 * 1024);
        assert_eq!(l.feature_sram_bytes, 100 * 1024);
        assert_eq!(l.columns, 227);
    }

    #[test]
    fn feature_accounting_bit_packs() {
        assert_eq!(ResourceLimits::feature_bytes_needed(100_352, 4), 50_176);
        assert_eq!(ResourceLimits::feature_bytes_needed(3, 3), 2);
        assert_eq!(ResourceLimits::feature_bytes_needed(0, 4), 0);
    }
}
