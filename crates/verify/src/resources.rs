//! Pass 4 — resource budget.
//!
//! The program's streaming kernel working set must fit the kernel SRAM, the
//! readout payload must fit the feature SRAM, layer names must be unique
//! (partition cuts, traces, and noise plans address layers by name), and
//! structurally dead instructions are reported.

use crate::diag::{DiagClass, Diagnostic, Report, Severity};
use crate::limits::ResourceLimits;
use crate::shape::Site;
use crate::{Instruction, Program};
use redeye_analog::resolution_admissible;
use std::collections::BTreeMap;

fn diag(severity: Severity, code: &'static str, message: String) -> Diagnostic {
    Diagnostic::new(severity, DiagClass::ResourceBudget, code, message)
}

pub(crate) fn run(
    program: &Program,
    sites: &[Site<'_>],
    final_shape: Option<[usize; 3]>,
    limits: &ResourceLimits,
    report: &mut Report,
) {
    let working_set = program.kernel_working_set_bytes();
    if working_set > limits.kernel_sram_bytes {
        report.push(
            diag(
                Severity::Error,
                "RE0401",
                format!(
                    "kernel working set {working_set} B over-runs the {} B program SRAM",
                    limits.kernel_sram_bytes
                ),
            )
            .with_note(format!(
                "the working set is the double-buffered per-channel residency while streaming; \
                 the whole program stores {} B of codes",
                program.kernel_bytes()
            )),
        );
    }

    if let Some([c, h, w]) = final_shape {
        if resolution_admissible(program.adc_bits) {
            let values = (c * h * w) as u64;
            let needed = ResourceLimits::feature_bytes_needed(values, program.adc_bits);
            if needed > limits.feature_sram_bytes {
                report.push(
                    diag(
                        Severity::Warning,
                        "RE0402",
                        format!(
                            "readout payload {needed} B ({values} features at {} bits) over-runs \
                             the {} B feature SRAM if buffered whole-frame",
                            program.adc_bits, limits.feature_sram_bytes
                        ),
                    )
                    .with_note(
                        "the host must drain features during readout; to buffer a full frame, \
                         cut deeper, pool harder, or lower the ADC depth",
                    ),
                );
            }
        }
    }

    let mut seen: BTreeMap<&str, &[usize]> = BTreeMap::new();
    for site in sites {
        let name = site.inst.name();
        if let Some(first) = seen.get(name) {
            let first_path: Vec<String> = first.iter().map(ToString::to_string).collect();
            report.push(
                diag(
                    Severity::Error,
                    "RE0403",
                    format!(
                        "duplicate layer name `{name}` (first used at instruction #{})",
                        first_path.join(".")
                    ),
                )
                .at_layer(name)
                .at_path(&site.path)
                .with_note(
                    "partition cuts, execution traces, and noise plans address layers by name",
                ),
            );
        } else {
            seen.insert(name, &site.path);
        }
    }

    for site in sites {
        match site.inst {
            Instruction::MaxPool {
                name,
                window: 1,
                stride: 1,
                ..
            }
            | Instruction::AvgPool {
                name,
                window: 1,
                stride: 1,
                ..
            } => {
                report.push(
                    diag(
                        Severity::Warning,
                        "RE0404",
                        format!("pool `{name}` is dead: a 1x1 window at stride 1 is the identity"),
                    )
                    .at_layer(name)
                    .at_path(&site.path)
                    .with_note("the pass still charges buffer writes; drop it from the program"),
                );
            }
            Instruction::Inception { name, branches } => {
                for (bi, branch) in branches.iter().enumerate() {
                    if branch.is_empty() {
                        report.push(
                            diag(
                                Severity::Warning,
                                "RE0404",
                                format!(
                                    "inception `{name}` branch {bi} is empty (identity \
                                     passthrough of the stored input)"
                                ),
                            )
                            .at_layer(name)
                            .at_path(&site.path),
                        );
                    }
                }
            }
            _ => {}
        }
    }

    if program.instructions.is_empty() {
        report.push(diag(
            Severity::Note,
            "RE0405",
            "capture-only program: no analog instructions run before the readout".into(),
        ));
    }
}
