//! Pass 6 — signal-range / saturation analysis (RE06xx).
//!
//! Abstract-interprets the analog signal chain over an *interval-with-noise*
//! domain: each dataflow edge carries the worst-case per-value envelope
//! `[lo, hi]` (in units of the capture full-scale, so the raw pixel input is
//! `[0, 1]` and one unit maps onto the 0.9 V swing), the worst-case
//! accumulated noise sigma, and whether every value on the edge is provably
//! clamped non-negative (post-ReLU). Transfer functions follow the
//! behavioral models in `redeye-analog`:
//!
//! - **conv/MAC** (`tunable_cap.rs`, `opamp.rs`): per-output-channel
//!   interval arithmetic over the signed DAC codes (`w = code · scale`),
//!   plus the damping stage's relative noise `10^(−SNR/20)`
//!   (`damping.rs`) and the MAC op amp's input-referred noise. Upstream
//!   sigma is amplified by the worst-case absolute row gain `Σ|w|`.
//! - **max-pool** (comparator): selects one of its taps — envelope, sigma,
//!   and clamping all flow through unchanged.
//! - **avg-pool / LRN**: keep (avg) or rescale (LRN, bounded by `k^−β`)
//!   the envelope, then add their own damping-stage noise; their outputs
//!   are *not* clamped, which matters at the readout.
//! - **sample-hold / SAR** (`sar.rs`): the readout clamps at the 0 V rail
//!   (`max(0)` before conversion), so a program whose final envelope can
//!   go negative clips there.
//!
//! The executor's gain staging normalizes each stage to the swing, so
//! absolute-magnitude rails are not the failure mode — provable *sign*
//! collapse and noise domination are:
//!
//! - `RE0601` (error): a ReLU conv whose pre-activation envelope is
//!   entirely negative — every output provably pinned at the rail.
//! - `RE0602` (error): the readout envelope is entirely below the 0 V
//!   rail — every feature quantizes to code 0.
//! - `RE0603` (warning): the readout envelope straddles the rail —
//!   negative excursions clip during SAR conversion.
//! - `RE0604` (warning): the envelope is non-negative but unclamped noise
//!   can push samples below the rail.
//! - `RE0605` (warning): a conv output is provably constant.
//! - `RE0606` (warning): accumulated noise sigma meets or exceeds the
//!   signal envelope at the readout.
//! - `RE0607` (error): LRN normalization parameters make the envelope
//!   unbounded or undefined.

use crate::dataflow::{self, Ctx, ForwardAnalysis};
use crate::diag::{DiagClass, Diagnostic, Report, Severity};
use crate::{Instruction, Program};
use redeye_analog::calib::SWING;
use redeye_analog::OpAmp;
use serde::Serialize;

/// The abstract value: worst-case per-value envelope in capture full-scale
/// units, accumulated noise sigma, and provable non-negativity.
#[derive(Debug, Clone)]
struct SignalState {
    /// Envelope lower bound.
    lo: f64,
    /// Envelope upper bound.
    hi: f64,
    /// Worst-case accumulated (unclamped) noise sigma.
    sigma: f64,
    /// Every value provably ≥ 0 (post-ReLU, or noiseless non-negative).
    clamped: bool,
}

/// One row of the `--ranges` table: the signal envelope *after* an
/// instruction, in volts at the analog swing.
#[derive(Debug, Clone, Serialize)]
pub struct RangeSummary {
    /// Instruction (layer) name.
    pub layer: String,
    /// Instruction index path into the program.
    pub path: Vec<usize>,
    /// Depth-first stage ordinal (executor noise-stream numbering).
    pub ordinal: usize,
    /// Envelope lower bound in volts.
    pub lo_volts: f64,
    /// Envelope upper bound in volts.
    pub hi_volts: f64,
    /// Worst-case accumulated noise sigma in volts.
    pub sigma_volts: f64,
}

fn volts(units: f64) -> f64 {
    units * SWING.value()
}

fn diag(severity: Severity, code: &'static str, message: String) -> Diagnostic {
    Diagnostic::new(severity, DiagClass::SignalRange, code, message)
}

/// Runs the pass, emitting RE06xx diagnostics. When `collect` is set, also
/// returns the per-instruction envelope table for `--ranges`.
pub(crate) fn run(program: &Program, report: &mut Report, collect: bool) -> Vec<RangeSummary> {
    let mut analysis = SignalAnalysis {
        summaries: Vec::new(),
        collect,
        // Input-referred MAC amplifier noise, normalized to the swing.
        opamp_noise: OpAmp::mac_amplifier().input_noise_rms.value() / SWING.value(),
    };
    // Raw pixels: non-negative, noiseless, spanning the capture full-scale.
    let start = SignalState {
        lo: 0.0,
        hi: 1.0,
        sigma: 0.0,
        clamped: true,
    };
    let exit = dataflow::run(program, Some(start), &mut analysis, report);
    if let Some(s) = exit {
        check_readout(&s, report);
    }
    analysis.summaries
}

/// Readout checks: the SAR conversion clamps at the 0 V rail
/// (`value.max(0)` before quantization), so sign structure at the program
/// exit decides whether clipping can occur.
fn check_readout(s: &SignalState, report: &mut Report) {
    if s.hi < 0.0 {
        report.push(
            diag(
                Severity::Error,
                "RE0602",
                format!(
                    "readout envelope [{:.3}, {:.3}] V is entirely below the 0 V rail; every \
                     feature clips to code 0 during SAR conversion",
                    volts(s.lo),
                    volts(s.hi)
                ),
            )
            .with_note(
                "the SAR quantizer clamps negative samples at the lower rail; the program's \
                 output is provably all-zero",
            ),
        );
    } else if s.lo < 0.0 {
        report.push(
            diag(
                Severity::Warning,
                "RE0603",
                format!(
                    "readout envelope [{:.3}, {:.3}] V extends below the 0 V rail; negative \
                     excursions clip during SAR conversion",
                    volts(s.lo),
                    volts(s.hi)
                ),
            )
            .with_note(
                "end the program with a ReLU stage or re-bias the final layer if negative \
                 values carry information",
            ),
        );
    } else if !s.clamped && s.sigma > 0.0 {
        report.push(
            diag(
                Severity::Warning,
                "RE0604",
                format!(
                    "readout envelope [{:.3}, {:.3}] V is non-negative but ≈{:.4} V of \
                     unclamped noise can push samples below the 0 V rail",
                    volts(s.lo),
                    volts(s.hi),
                    volts(s.sigma)
                ),
            )
            .with_note(
                "the final analog stage adds noise after the last rectification; sub-rail \
                 samples clip during SAR conversion",
            ),
        );
    }
    let amp = s.lo.abs().max(s.hi.abs());
    if amp > 0.0 && s.sigma >= amp {
        report.push(
            diag(
                Severity::Warning,
                "RE0606",
                format!(
                    "worst-case accumulated noise σ ≈ {:.3} V meets or exceeds the signal \
                     envelope ±{:.3} V at the readout",
                    volts(s.sigma),
                    volts(amp)
                ),
            )
            .with_note(
                "the chain's damping budgets leave no provable signal margin; raise per-layer \
                 SNR or shorten the analog chain",
            ),
        );
    }
}

struct SignalAnalysis {
    summaries: Vec<RangeSummary>,
    collect: bool,
    opamp_noise: f64,
}

impl SignalAnalysis {
    fn record(&mut self, inst: &Instruction, ctx: &Ctx<'_>, s: &SignalState) {
        if self.collect {
            self.summaries.push(RangeSummary {
                layer: inst.name().to_string(),
                path: ctx.path.to_vec(),
                ordinal: ctx.ordinal,
                lo_volts: volts(s.lo),
                hi_volts: volts(s.hi),
                sigma_volts: volts(s.sigma),
            });
        }
    }

    /// The damping stage's relative noise for a layer envelope of amplitude
    /// `amp`: `σ = amp · 10^(−SNR/20)` plus the MAC amplifier's
    /// input-referred term. Zero-amplitude stages add nothing (the executor
    /// skips noise injection entirely on all-zero signals).
    fn stage_sigma(&self, amp: f64, snr: redeye_analog::SnrDb) -> f64 {
        if amp <= 0.0 {
            return 0.0;
        }
        let rel = if snr.db().is_finite() {
            1.0 / snr.amplitude_ratio()
        } else {
            0.0
        };
        amp * rel + self.opamp_noise
    }
}

impl<'p> ForwardAnalysis<'p> for SignalAnalysis {
    type State = SignalState;

    fn transfer(
        &mut self,
        inst: &'p Instruction,
        state: &SignalState,
        ctx: &Ctx<'_>,
        report: &mut Report,
    ) -> Option<SignalState> {
        let out = match inst {
            Instruction::Conv {
                name,
                out_c,
                relu,
                codes,
                scale,
                bias,
                snr,
                ..
            } => {
                // Degenerate weight layouts are the shape/code passes' to
                // report; the interval just stops here.
                if *out_c == 0
                    || codes.is_empty()
                    || codes.len() % *out_c != 0
                    || bias.len() != *out_c
                    || !scale.is_finite()
                    || bias.iter().any(|b| !b.is_finite())
                {
                    return None;
                }
                let patch = codes.len() / *out_c;
                let scale = f64::from(*scale);
                let (mut lo_out, mut hi_out) = (f64::INFINITY, f64::NEG_INFINITY);
                let mut gain = 0.0f64;
                for (k, row) in codes.chunks_exact(patch).enumerate() {
                    let b = f64::from(bias[k]);
                    let (mut lo_k, mut hi_k, mut g_k) = (b, b, 0.0f64);
                    for &code in row {
                        let w = f64::from(code) * scale;
                        let (a, b) = (w * state.lo, w * state.hi);
                        lo_k += a.min(b);
                        hi_k += a.max(b);
                        g_k += w.abs();
                    }
                    lo_out = lo_out.min(lo_k);
                    hi_out = hi_out.max(hi_k);
                    gain = gain.max(g_k);
                }
                let amp = lo_out.abs().max(hi_out.abs());
                let sigma = state.sigma * gain + self.stage_sigma(amp, *snr);
                if *relu && hi_out < 0.0 {
                    report.push(
                        diag(
                            Severity::Error,
                            "RE0601",
                            format!(
                                "conv `{name}` worst-case pre-activation envelope \
                                 [{:.3}, {:.3}] V is entirely negative; ReLU pins every \
                                 output at the 0 V rail",
                                volts(lo_out),
                                volts(hi_out)
                            ),
                        )
                        .at_layer(name)
                        .at_path(ctx.path)
                        .with_note(
                            "the layer output is provably zero for every input; everything \
                             downstream computes on a dead signal",
                        ),
                    );
                    Some(SignalState {
                        lo: 0.0,
                        hi: 0.0,
                        sigma: 0.0,
                        clamped: true,
                    })
                } else {
                    let (lo, hi, clamped) = if *relu {
                        (lo_out.max(0.0), hi_out.max(0.0), true)
                    } else {
                        (lo_out, hi_out, false)
                    };
                    if lo == hi {
                        report.push(
                            diag(
                                Severity::Warning,
                                "RE0605",
                                format!(
                                    "conv `{name}` output is provably constant at {:.3} V \
                                     regardless of the input",
                                    volts(lo)
                                ),
                            )
                            .at_layer(name)
                            .at_path(ctx.path)
                            .with_note(
                                "no weight row contributes net swing; the layer carries no \
                                 information",
                            ),
                        );
                    }
                    Some(SignalState {
                        lo,
                        hi,
                        sigma,
                        clamped,
                    })
                }
            }
            // The comparator selects one of its taps: envelope, sigma, and
            // clamping all flow through.
            Instruction::MaxPool { .. } => Some(state.clone()),
            Instruction::AvgPool { snr, .. } => {
                let amp = state.lo.abs().max(state.hi.abs());
                let added = self.stage_sigma(amp, *snr);
                Some(SignalState {
                    lo: state.lo,
                    hi: state.hi,
                    sigma: state.sigma + added,
                    clamped: state.clamped && added == 0.0,
                })
            }
            Instruction::Lrn {
                name,
                alpha,
                beta,
                k,
                snr,
                ..
            } => {
                if !k.is_finite()
                    || !alpha.is_finite()
                    || !beta.is_finite()
                    || *k <= 0.0
                    || *alpha < 0.0
                    || *beta < 0.0
                {
                    report.push(
                        diag(
                            Severity::Error,
                            "RE0607",
                            format!(
                                "LRN `{name}` normalization (k = {k}, α = {alpha}, β = {beta}) \
                                 makes the signal envelope unbounded or undefined"
                            ),
                        )
                        .at_layer(name)
                        .at_path(ctx.path)
                        .with_note(
                            "the divisor (k + α·Σx²)^β must be positive and bounded away from \
                             zero: require k > 0, α ≥ 0, β ≥ 0",
                        ),
                    );
                    return None;
                }
                // Divisor ≥ k^β, so the multiplier is bounded by k^−β and
                // the output keeps the input's sign.
                let m = f64::from(*k).powf(f64::from(-*beta));
                let lo = (state.lo * m).min(0.0);
                let hi = (state.hi * m).max(0.0);
                let amp = lo.abs().max(hi.abs());
                let added = self.stage_sigma(amp, *snr);
                Some(SignalState {
                    lo,
                    hi,
                    sigma: state.sigma * m + added,
                    clamped: state.clamped && added == 0.0,
                })
            }
            Instruction::Inception { .. } => unreachable!("engine routes inception through join"),
        };
        if let Some(s) = &out {
            self.record(inst, ctx, s);
        }
        out
    }

    fn join(
        &mut self,
        inst: &'p Instruction,
        state: &SignalState,
        exits: &[Option<SignalState>],
        ctx: &Ctx<'_>,
        _report: &mut Report,
    ) -> Option<SignalState> {
        // Channel concatenation: the combined envelope is the per-branch
        // hull; any cut branch leaves the concatenation unbounded.
        if exits.is_empty() || exits.iter().any(Option::is_none) {
            return None;
        }
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        let mut sigma = 0.0f64;
        let mut clamped = true;
        for e in exits.iter().flatten() {
            lo = lo.min(e.lo);
            hi = hi.max(e.hi);
            sigma = sigma.max(e.sigma);
            clamped &= e.clamped;
        }
        let _ = state;
        let out = SignalState {
            lo,
            hi,
            sigma,
            clamped,
        };
        self.record(inst, ctx, &out);
        Some(out)
    }
}
