//! # redeye-verify — static analysis for RedEye ConvNet programs
//!
//! A RedEye program is written once into the sensor's program SRAM and then
//! runs on every frame; a malformed program wastes analog energy at best and
//! produces garbage silently at worst. This crate checks a [`Program`]
//! *without executing it*, the way `rustc` checks a crate without running it,
//! and reports structured [`Diagnostic`]s.
//!
//! ## Passes
//!
//! 1. **Shape dataflow** ([`DiagClass::ShapeDataflow`], `RE01xx`) —
//!    symbolically propagates the `(C, H, W)` activation shape through the
//!    instruction chain with the executor's exact geometry, rejecting
//!    non-chaining dimensions, degenerate outputs, and inputs wider than the
//!    physical column array.
//! 2. **DAC/code range** ([`DiagClass::CodeRange`], `RE02xx`) — weight codes
//!    must fit the 8-bit signed tunable-capacitor DAC, scales and biases
//!    must be finite, buffer lengths must match the layer geometry.
//! 3. **Noise admission** ([`DiagClass::NoiseAdmission`], `RE03xx`) —
//!    per-layer SNR settings must be admissible by the damping circuit and
//!    the ADC depth realizable by the SAR array; warnings flag energy wasted
//!    on fidelity the chain cannot deliver.
//! 4. **Resource budget** ([`DiagClass::ResourceBudget`], `RE04xx`) — kernel
//!    working set vs. program SRAM, readout payload vs. feature SRAM,
//!    duplicate layer names, dead instructions.
//! 5. **Spec conformance** ([`DiagClass::SpecConformance`], `RE05xx`, only
//!    via [`verify_against_spec`]) — the program faithfully implements the
//!    [`NetworkSpec`] it was compiled from.
//! 6. **Signal range** ([`DiagClass::SignalRange`], `RE06xx`) — abstract
//!    interpretation over an interval-with-noise domain: provable rail
//!    saturation and dead (always-rectified or constant) signals are
//!    errors, sub-rail excursions and noise-dominated readouts warnings.
//! 7. **Cost model** ([`DiagClass::CostModel`], `RE07xx`) — static
//!    energy/latency bounds from the executor's own per-op cost constants,
//!    bracketed over process corners and checked against a [`CostBudget`].
//!
//! Passes 1, 3, and 6 all run on one shared forward-dataflow engine over
//! the Program IR (the `dataflow` module); the IR is acyclic, so a single
//! program-order walk with a join at each inception is the fixpoint. Pass 7
//! consumes the shape pass's per-instruction sites.
//!
//! ## Entry points
//!
//! ```
//! use redeye_verify::{verify, Program};
//!
//! let program = Program::new("capture-only", [3, 32, 32], vec![], 8);
//! let report = verify(&program);
//! assert!(!report.has_errors());
//! ```
//!
//! [`verify`] checks against the paper's default resources;
//! [`verify_with_limits`] parameterizes them; [`verify_with_options`] adds
//! the cost budget; [`verify_against_spec`] adds the conformance pass.
//! All entry points always run every pass and return the full [`Report`]
//! (diagnostics in canonical order, see [`Report::normalize`]) — policy
//! (deny errors, deny warnings, ignore) is the caller's decision.
//! [`analyze_cost`] and [`analyze_ranges`] expose the passes' underlying
//! analysis results for tooling.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod codes;
mod conformance;
mod cost;
mod dataflow;
mod diag;
mod limits;
mod noise;
mod program;
mod resources;
mod shape;
mod signal;

pub use cost::{CostBounds, CostBudget, CostEstimate};
pub use diag::{DiagClass, Diagnostic, Report, Severity};
pub use limits::ResourceLimits;
pub use program::{Instruction, Program};
pub use signal::RangeSummary;

use redeye_nn::NetworkSpec;

/// Everything the full verification pipeline can be parameterized on.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct VerifyOptions {
    /// Physical resource limits (SRAM capacities, column count).
    pub limits: ResourceLimits,
    /// Per-frame cost caps for the RE07xx budget checks.
    pub budget: CostBudget,
}

/// Verifies a program against the paper's default resource limits.
#[must_use]
pub fn verify(program: &Program) -> Report {
    verify_with_options(program, &VerifyOptions::default())
}

/// Verifies a program against explicit resource limits.
#[must_use]
pub fn verify_with_limits(program: &Program, limits: &ResourceLimits) -> Report {
    verify_with_options(
        program,
        &VerifyOptions {
            limits: *limits,
            budget: CostBudget::default(),
        },
    )
}

/// Verifies a program with explicit resource limits and cost budget.
#[must_use]
pub fn verify_with_options(program: &Program, options: &VerifyOptions) -> Report {
    let mut report = Report::new(&program.name);
    let (sites, final_shape) = shape::analyze(program, &options.limits, &mut report);
    codes::run(&sites, &mut report);
    noise::run(program, &mut report);
    signal::run(program, &mut report, false);
    resources::run(program, &sites, final_shape, &options.limits, &mut report);
    cost::run(program, &sites, final_shape, &options.budget, &mut report);
    report.normalize();
    report
}

/// Verifies a program and additionally checks that it conforms to the
/// network spec it claims to implement.
#[must_use]
pub fn verify_against_spec(
    program: &Program,
    spec: &NetworkSpec,
    limits: &ResourceLimits,
) -> Report {
    let mut report = verify_with_limits(program, limits);
    conformance::run(program, spec, &mut report);
    report.normalize();
    report
}

/// Computes the static per-frame cost bounds for a program, or `None` when
/// the cost is not statically derivable (shape errors, inadmissible ADC
/// depth). The nominal point equals a `FrameEngine` ledger exactly; the
/// bounds bracket it over all process corners.
#[must_use]
pub fn analyze_cost(program: &Program) -> Option<CostBounds> {
    let mut scratch = Report::new(&program.name);
    let (sites, final_shape) = shape::analyze(program, &ResourceLimits::default(), &mut scratch);
    cost::compute(program, &sites, final_shape)
}

/// Computes the per-instruction signal envelope table (the `--ranges`
/// view): one row per instruction the signal dataflow reaches, in
/// depth-first program order, in volts at the analog swing.
#[must_use]
pub fn analyze_ranges(program: &Program) -> Vec<RangeSummary> {
    let mut scratch = Report::new(&program.name);
    signal::run(program, &mut scratch, true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use redeye_analog::SnrDb;

    fn conv(name: &str, in_c: usize, out_c: usize, kernel: usize, snr: f64) -> Instruction {
        Instruction::Conv {
            name: name.into(),
            out_c,
            kernel,
            stride: 1,
            pad: kernel / 2,
            relu: true,
            codes: vec![1; out_c * in_c * kernel * kernel],
            scale: 1.0 / 128.0,
            bias: vec![0.0; out_c],
            snr: SnrDb::new(snr),
        }
    }

    fn small_program() -> Program {
        Program::new(
            "unit",
            [3, 16, 16],
            vec![
                conv("conv1", 3, 8, 3, 55.0),
                Instruction::MaxPool {
                    name: "pool1".into(),
                    window: 2,
                    stride: 2,
                    pad: 0,
                },
                conv("conv2", 8, 4, 3, 50.0),
            ],
            8,
        )
    }

    #[test]
    fn well_formed_program_is_clean() {
        let report = verify(&small_program());
        assert!(report.is_clean(), "unexpected diagnostics:\n{report}");
    }

    #[test]
    fn shape_break_cuts_dataflow_and_notes_unreachable() {
        let mut p = small_program();
        // An unpadded 64x64 kernel cannot apply to a 16x16 input.
        p.instructions[0] = conv("conv1", 3, 8, 64, 55.0);
        if let Instruction::Conv { pad, .. } = &mut p.instructions[0] {
            *pad = 0;
        }
        let report = verify(&p);
        assert!(report.has_errors());
        let codes: Vec<&str> = report.diagnostics.iter().map(|d| d.code).collect();
        assert!(codes.contains(&"RE0101"), "got {codes:?}");
        assert!(codes.contains(&"RE0105"), "got {codes:?}");
    }

    #[test]
    fn out_of_range_code_is_flagged() {
        let mut p = small_program();
        if let Instruction::Conv { codes, .. } = &mut p.instructions[0] {
            codes[0] = 999;
        }
        let report = verify(&p);
        assert!(report
            .errors()
            .any(|d| d.code == "RE0201" && d.layer.as_deref() == Some("conv1")));
    }

    #[test]
    fn inadmissible_snr_is_an_error_and_off_band_a_warning() {
        let mut p = small_program();
        p.instructions[0] = conv("conv1", 3, 8, 3, f64::NAN);
        p.instructions[2] = conv("conv2", 8, 4, 3, 20.0);
        let report = verify(&p);
        assert!(report.errors().any(|d| d.code == "RE0301"));
        assert!(report.warnings().any(|d| d.code == "RE0302"));
    }

    #[test]
    fn wasted_snr_budget_warns() {
        let mut p = small_program();
        // conv2 asks for a tighter noise budget than conv1 already allowed.
        p.instructions[0] = conv("conv1", 3, 8, 3, 42.0);
        p.instructions[2] = conv("conv2", 8, 4, 3, 58.0);
        let report = verify(&p);
        assert!(report.warnings().any(|d| d.code == "RE0303"));
    }

    #[test]
    fn adc_depth_checked_against_sar() {
        let mut p = small_program();
        p.adc_bits = 14;
        let report = verify(&p);
        assert!(report.errors().any(|d| d.code == "RE0304"));
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut p = small_program();
        p.instructions[2] = conv("conv1", 8, 4, 3, 50.0);
        let report = verify(&p);
        assert!(report
            .errors()
            .any(|d| d.code == "RE0403" && d.layer.as_deref() == Some("conv1")));
    }

    #[test]
    fn kernel_sram_overflow_rejected() {
        let limits = ResourceLimits {
            kernel_sram_bytes: 64,
            ..ResourceLimits::default()
        };
        let report = verify_with_limits(&small_program(), &limits);
        assert!(report.errors().any(|d| d.code == "RE0401"));
    }

    #[test]
    fn conformance_flags_parameter_drift() {
        use redeye_nn::{LayerSpec, NetworkSpec};
        let p = small_program();
        let spec = NetworkSpec::new(
            "unit",
            [3, 16, 16],
            vec![
                LayerSpec::Conv {
                    name: "conv1".into(),
                    out_c: 8,
                    kernel: 5, // program uses 3
                    stride: 1,
                    pad: 1,
                    relu: true,
                },
                LayerSpec::MaxPool {
                    name: "pool1".into(),
                    window: 2,
                    stride: 2,
                    pad: 0,
                },
                LayerSpec::Conv {
                    name: "conv2".into(),
                    out_c: 4,
                    kernel: 3,
                    stride: 1,
                    pad: 1,
                    relu: true,
                },
            ],
        );
        let report = verify_against_spec(&p, &spec, &ResourceLimits::default());
        assert!(report
            .errors()
            .any(|d| d.code == "RE0503" && d.layer.as_deref() == Some("conv1")));
    }
}
