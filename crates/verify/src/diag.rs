//! The diagnostic model: severities, pass classes, diagnostics, and the
//! structured [`Report`] every verification run produces.
//!
//! Diagnostics are deliberately rustc-shaped: a severity, a stable code
//! (`RE0xxx`), a one-line message, and a location given as the instruction
//! index path into the program (nested for inception branches). [`Report`]
//! renders them as a compiler-style listing and can be serialized for
//! tooling.

use serde::Serialize;
use std::collections::BTreeSet;
use std::fmt;

/// How bad a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize)]
pub enum Severity {
    /// Informational; never blocks compilation or execution.
    Note,
    /// Suspicious but executable (wasted energy, untuned operating point).
    Warning,
    /// The program violates a hard envelope and must not execute.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Note => write!(f, "note"),
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// Which verification pass produced a diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize)]
pub enum DiagClass {
    /// Symbolic `(C, H, W)` propagation through the instruction chain.
    ShapeDataflow,
    /// Weight codes, scales, and biases vs. the 8-bit DAC envelope.
    CodeRange,
    /// Per-layer SNR and ADC bit depth vs. the analog admissibility bands.
    NoiseAdmission,
    /// SRAM budgets, duplicate names, dead instructions.
    ResourceBudget,
    /// Program vs. the network spec it claims to implement.
    SpecConformance,
    /// Interval/noise abstract interpretation of the analog signal chain.
    SignalRange,
    /// Static per-frame energy/latency bounds vs. the configured budget.
    CostModel,
}

impl fmt::Display for DiagClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiagClass::ShapeDataflow => write!(f, "shape-dataflow"),
            DiagClass::CodeRange => write!(f, "code-range"),
            DiagClass::NoiseAdmission => write!(f, "noise-admission"),
            DiagClass::ResourceBudget => write!(f, "resource-budget"),
            DiagClass::SpecConformance => write!(f, "spec-conformance"),
            DiagClass::SignalRange => write!(f, "signal-range"),
            DiagClass::CostModel => write!(f, "cost-model"),
        }
    }
}

/// One finding of the verifier.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Diagnostic {
    /// Severity of the finding.
    pub severity: Severity,
    /// The pass that produced it.
    pub class: DiagClass,
    /// Stable diagnostic code (`"RE0101"`, …).
    pub code: &'static str,
    /// One-line human-readable message.
    pub message: String,
    /// Name of the offending layer, when the finding is layer-scoped.
    pub layer: Option<String>,
    /// Instruction index path into the program: `[3]` is top-level
    /// instruction 3; `[3, 1, 0]` is instruction 0 of branch 1 of the
    /// inception at index 3. Empty for program-scoped findings.
    pub path: Vec<usize>,
    /// Optional follow-on explanation rendered as a `= note:` line.
    pub note: Option<String>,
}

impl Diagnostic {
    /// Creates a diagnostic with no layer, path, or note attached.
    pub fn new(
        severity: Severity,
        class: DiagClass,
        code: &'static str,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            severity,
            class,
            code,
            message: message.into(),
            layer: None,
            path: Vec::new(),
            note: None,
        }
    }

    /// Attaches the offending layer name.
    #[must_use]
    pub fn at_layer(mut self, layer: impl Into<String>) -> Self {
        self.layer = Some(layer.into());
        self
    }

    /// Attaches the instruction index path.
    #[must_use]
    pub fn at_path(mut self, path: &[usize]) -> Self {
        self.path = path.to_vec();
        self
    }

    /// Attaches a follow-on note.
    #[must_use]
    pub fn with_note(mut self, note: impl Into<String>) -> Self {
        self.note = Some(note.into());
        self
    }

    /// Renders the index path as `#3` / `#3.1.0`.
    fn path_display(&self) -> String {
        if self.path.is_empty() {
            return String::from("program");
        }
        let joined: Vec<String> = self.path.iter().map(ToString::to_string).collect();
        format!("#{}", joined.join("."))
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}[{}]: {}", self.severity, self.code, self.message)?;
        match &self.layer {
            Some(layer) => writeln!(f, "  --> instruction {} (`{layer}`)", self.path_display())?,
            None => writeln!(f, "  --> {}", self.path_display())?,
        }
        if let Some(note) = &self.note {
            writeln!(f, "  = note: {note}")?;
        }
        Ok(())
    }
}

/// The structured result of verifying one program: every diagnostic from
/// every pass, in program order within each pass.
#[derive(Debug, Clone, PartialEq, Serialize, Default)]
pub struct Report {
    /// Name of the verified program.
    pub program: String,
    /// All findings.
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// Creates an empty report for the named program.
    pub fn new(program: impl Into<String>) -> Self {
        Report {
            program: program.into(),
            diagnostics: Vec::new(),
        }
    }

    /// Appends a diagnostic.
    pub fn push(&mut self, diag: Diagnostic) {
        self.diagnostics.push(diag);
    }

    /// Number of diagnostics at the given severity.
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// Whether any error-severity diagnostic was produced.
    pub fn has_errors(&self) -> bool {
        self.count(Severity::Error) > 0
    }

    /// Whether any warning-severity diagnostic was produced.
    pub fn has_warnings(&self) -> bool {
        self.count(Severity::Warning) > 0
    }

    /// Whether the program verified without errors *or* warnings (notes are
    /// allowed).
    pub fn is_clean(&self) -> bool {
        !self.has_errors() && !self.has_warnings()
    }

    /// The error-severity diagnostics.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }

    /// The warning-severity diagnostics.
    pub fn warnings(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
    }

    /// The set of pass classes that produced at least one diagnostic at or
    /// above the given severity.
    pub fn classes_at(&self, severity: Severity) -> BTreeSet<DiagClass> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity >= severity)
            .map(|d| d.class)
            .collect()
    }

    /// Sorts diagnostics into the canonical presentation order and drops
    /// exact duplicates.
    ///
    /// The order is `(code, path, severity, layer, message, note)`: code
    /// first so related findings group together, then the instruction index
    /// path (the program-order "span"). Because the order is a pure function
    /// of diagnostic content, rendering is stable no matter which pass ran
    /// first or how passes interleave — the property the golden-snapshot
    /// suite and `redeye-lint` JSON artifacts rely on. Entry points call
    /// this before returning; it is idempotent and safe to call again.
    pub fn normalize(&mut self) {
        self.diagnostics.sort_by(|a, b| {
            (a.code, &a.path, a.severity, &a.layer, &a.message, &a.note)
                .cmp(&(b.code, &b.path, b.severity, &b.layer, &b.message, &b.note))
        });
        self.diagnostics.dedup();
    }

    /// Renders the full rustc-style listing, ending with a summary line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_string());
        }
        let (e, w, n) = (
            self.count(Severity::Error),
            self.count(Severity::Warning),
            self.count(Severity::Note),
        );
        if self.diagnostics.is_empty() {
            out.push_str(&format!("`{}`: verified clean\n", self.program));
        } else {
            out.push_str(&format!(
                "`{}`: {e} error(s), {w} warning(s), {n} note(s)\n",
                self.program
            ));
        }
        out
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(severity: Severity) -> Diagnostic {
        Diagnostic::new(severity, DiagClass::ShapeDataflow, "RE0101", "boom")
            .at_layer("conv1")
            .at_path(&[2, 0])
            .with_note("kernel larger than padded input")
    }

    #[test]
    fn severity_orders_note_warning_error() {
        assert!(Severity::Note < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
    }

    #[test]
    fn rendering_is_rustc_shaped() {
        let text = diag(Severity::Error).to_string();
        assert!(text.starts_with("error[RE0101]: boom"), "{text}");
        assert!(text.contains("--> instruction #2.0 (`conv1`)"), "{text}");
        assert!(text.contains("= note: kernel larger"), "{text}");
    }

    #[test]
    fn report_counts_and_classes() {
        let mut r = Report::new("p");
        assert!(r.is_clean() && !r.has_errors());
        r.push(diag(Severity::Warning));
        r.push(diag(Severity::Error));
        r.push(Diagnostic::new(
            Severity::Note,
            DiagClass::ResourceBudget,
            "RE0405",
            "empty",
        ));
        assert_eq!(r.count(Severity::Error), 1);
        assert_eq!(r.count(Severity::Warning), 1);
        assert!(!r.is_clean());
        assert!(r.has_errors() && r.has_warnings());
        assert_eq!(r.errors().count(), 1);
        let classes = r.classes_at(Severity::Warning);
        assert!(classes.contains(&DiagClass::ShapeDataflow));
        assert!(!classes.contains(&DiagClass::ResourceBudget));
        assert!(r.render().contains("1 error(s), 1 warning(s), 1 note(s)"));
    }

    #[test]
    fn normalize_sorts_by_code_then_path_and_dedups() {
        let mut r = Report::new("p");
        let late = Diagnostic::new(Severity::Warning, DiagClass::NoiseAdmission, "RE0302", "w")
            .at_path(&[2]);
        let early =
            Diagnostic::new(Severity::Error, DiagClass::ShapeDataflow, "RE0101", "e").at_path(&[5]);
        let mid = Diagnostic::new(Severity::Error, DiagClass::ShapeDataflow, "RE0101", "e")
            .at_path(&[1, 0]);
        r.push(late.clone());
        r.push(early.clone());
        r.push(mid.clone());
        r.push(early.clone()); // duplicate
        r.normalize();
        assert_eq!(r.diagnostics, vec![mid, early, late]);
    }

    #[test]
    fn clean_report_renders_summary() {
        let r = Report::new("tidy");
        assert!(r.render().contains("`tidy`: verified clean"));
    }
}
