//! Golden-snapshot tests: one checked-in rendering per diagnostic code.
//!
//! Every case builds the smallest program that triggers one code
//! (RE0101–RE0704), asserts the code is present, and compares the full
//! normalized [`Report::render`] output against the checked-in snapshot in
//! `tests/goldens/<case>.txt`. Because [`Report::normalize`] sorts and
//! dedups before rendering, the snapshots are byte-deterministic.
//!
//! To regenerate the snapshots after an intentional wording or ordering
//! change:
//!
//! ```text
//! UPDATE_GOLDENS=1 cargo test -p redeye-verify --test golden
//! ```
//!
//! then review the diff under `crates/verify/tests/goldens/` and commit it.
//! A missing snapshot fails with the same instruction. Std-only: no
//! snapshot-testing dependency is involved.

use redeye_analog::{Joules, Seconds, SnrDb};
use redeye_nn::{LayerSpec, NetworkSpec};
use redeye_verify::{
    analyze_cost, verify, verify_against_spec, verify_with_options, CostBudget, Instruction,
    Program, Report, ResourceLimits, VerifyOptions,
};
use std::fs;
use std::path::PathBuf;

fn golden_path(case: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/goldens")
        .join(format!("{case}.txt"))
}

/// Asserts the trigger code fired, then snapshot-compares the rendering.
fn check(case: &str, code: &str, report: &Report) {
    assert!(
        report.diagnostics.iter().any(|d| d.code == code),
        "case {case}: expected {code} to fire:\n{}",
        report.render()
    );
    let rendered = report.render();
    let path = golden_path(case);
    if std::env::var_os("UPDATE_GOLDENS").is_some() {
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(&path, &rendered).unwrap();
        return;
    }
    let expected = fs::read_to_string(&path).unwrap_or_else(|_| {
        panic!("missing golden {path:?}; regenerate with UPDATE_GOLDENS=1 (see module docs)")
    });
    assert_eq!(
        rendered, expected,
        "case {case}: rendering drifted from {path:?}; if intentional, \
         regenerate with UPDATE_GOLDENS=1 and commit the diff"
    );
}

/// A well-formed conv: unit codes, 1/128 scale, zero bias.
fn conv(
    name: &str,
    in_c: usize,
    out_c: usize,
    kernel: usize,
    pad: usize,
    relu: bool,
) -> Instruction {
    Instruction::Conv {
        name: name.into(),
        out_c,
        kernel,
        stride: 1,
        pad,
        relu,
        codes: vec![1; out_c * in_c * kernel * kernel],
        scale: 1.0 / 128.0,
        bias: vec![0.0; out_c],
        snr: SnrDb::new(50.0),
    }
}

fn maxpool(name: &str, window: usize, stride: usize) -> Instruction {
    Instruction::MaxPool {
        name: name.into(),
        window,
        stride,
        pad: 0,
    }
}

/// Mutates the first (top-level) conv of the program.
fn with_conv(mut program: Program, f: impl FnOnce(&mut Instruction)) -> Program {
    let inst = program
        .instructions
        .iter_mut()
        .find(|i| matches!(i, Instruction::Conv { .. }))
        .expect("program has a conv");
    f(inst);
    program
}

/// The minimal clean program the RE02xx/RE06xx/RE07xx cases mutate.
fn base(name: &str) -> Program {
    Program::new(name, [3, 8, 8], vec![conv("conv1", 3, 4, 3, 1, true)], 4)
}

fn budget_report(name: &str, budget: CostBudget) -> Report {
    verify_with_options(
        &base(name),
        &VerifyOptions {
            budget,
            ..VerifyOptions::default()
        },
    )
}

/// The spec that `base` implements, for the conformance (RE05xx) cases.
fn base_spec(layers: Vec<LayerSpec>) -> NetworkSpec {
    NetworkSpec::new("base-spec", [3, 8, 8], layers)
}

fn spec_conv(name: &str, kernel: usize) -> LayerSpec {
    LayerSpec::Conv {
        name: name.into(),
        out_c: 4,
        kernel,
        stride: 1,
        pad: 1,
        relu: true,
    }
}

macro_rules! golden_case {
    ($case:ident, $code:literal, $build:expr) => {
        #[test]
        fn $case() {
            let report = $build;
            check(stringify!($case), $code, &report);
        }
    };
}

// ---- RE01xx: shape dataflow ------------------------------------------------

golden_case!(re0101, "RE0101", {
    verify(&Program::new(
        "re0101",
        [1, 3, 3],
        vec![conv("conv1", 1, 1, 5, 0, true)],
        4,
    ))
});

golden_case!(re0102, "RE0102", {
    verify(&Program::new(
        "re0102",
        [3, 8, 8],
        vec![Instruction::Conv {
            name: "conv1".into(),
            out_c: 0,
            kernel: 3,
            stride: 1,
            pad: 1,
            relu: true,
            codes: vec![],
            scale: 1.0 / 128.0,
            bias: vec![],
            snr: SnrDb::new(50.0),
        }],
        4,
    ))
});

golden_case!(re0103, "RE0103", {
    verify(&Program::new(
        "re0103",
        [1, 8, 8],
        vec![Instruction::Inception {
            name: "mixed".into(),
            branches: vec![
                vec![conv("b0_conv", 1, 2, 1, 0, true)],
                vec![maxpool("b1_pool", 2, 2)],
            ],
        }],
        4,
    ))
});

golden_case!(re0104, "RE0104", {
    verify(&Program::new(
        "re0104",
        [1, 8, 8],
        vec![Instruction::Inception {
            name: "hollow".into(),
            branches: vec![],
        }],
        4,
    ))
});

golden_case!(re0105, "RE0105", {
    verify(&Program::new(
        "re0105",
        [1, 3, 3],
        vec![conv("conv1", 1, 1, 5, 0, true), maxpool("pool1", 2, 2)],
        4,
    ))
});

golden_case!(re0106, "RE0106", {
    verify(&Program::new(
        "re0106",
        [3, 4, 300],
        vec![maxpool("pool1", 2, 2)],
        4,
    ))
});

golden_case!(re0107, "RE0107", {
    verify(&Program::new("re0107", [0, 8, 8], vec![], 4))
});

// ---- RE02xx: DAC/code range ------------------------------------------------

golden_case!(re0201, "RE0201", {
    verify(&with_conv(base("re0201"), |inst| {
        if let Instruction::Conv { codes, .. } = inst {
            codes[0] = 999;
        }
    }))
});

golden_case!(re0202, "RE0202", {
    verify(&with_conv(base("re0202"), |inst| {
        if let Instruction::Conv { codes, .. } = inst {
            codes.push(1);
        }
    }))
});

golden_case!(re0203, "RE0203", {
    verify(&with_conv(base("re0203"), |inst| {
        if let Instruction::Conv { bias, .. } = inst {
            bias.pop();
        }
    }))
});

golden_case!(re0204, "RE0204", {
    verify(&with_conv(base("re0204"), |inst| {
        if let Instruction::Conv { scale, .. } = inst {
            *scale = f32::NAN;
        }
    }))
});

// ---- RE03xx: noise admission -----------------------------------------------

golden_case!(re0301, "RE0301", {
    verify(&with_conv(base("re0301"), |inst| {
        if let Instruction::Conv { snr, .. } = inst {
            *snr = SnrDb::new(150.0);
        }
    }))
});

golden_case!(re0302, "RE0302", {
    let mut program = with_conv(base("re0302"), |inst| {
        if let Instruction::Conv { snr, .. } = inst {
            *snr = SnrDb::new(25.0);
        }
    });
    // 2-bit readout keeps the quantization SNR below the RE0305 threshold.
    program.adc_bits = 2;
    verify(&program)
});

golden_case!(re0303, "RE0303", {
    verify(&Program::new(
        "re0303",
        [3, 8, 8],
        vec![
            with_snr(conv("conv1", 3, 2, 3, 1, true), 42.0),
            with_snr(conv("conv2", 2, 2, 3, 1, true), 58.0),
        ],
        4,
    ))
});

golden_case!(re0304, "RE0304", {
    let mut program = base("re0304");
    program.adc_bits = 14;
    verify(&program)
});

golden_case!(re0305, "RE0305", {
    let mut program = with_conv(base("re0305"), |inst| {
        if let Instruction::Conv { snr, .. } = inst {
            *snr = SnrDb::new(40.0);
        }
    });
    program.adc_bits = 10;
    verify(&program)
});

// ---- RE04xx: resource budget -----------------------------------------------

golden_case!(re0401, "RE0401", {
    verify(&Program::new(
        "re0401",
        [3, 64, 64],
        vec![conv("conv1", 3, 1, 40, 20, true)],
        4,
    ))
});

golden_case!(re0402, "RE0402", {
    verify(&Program::new("re0402", [3, 200, 200], vec![], 10))
});

golden_case!(re0403, "RE0403", {
    verify(&Program::new(
        "re0403",
        [3, 8, 8],
        vec![maxpool("pool", 2, 2), maxpool("pool", 2, 2)],
        4,
    ))
});

golden_case!(re0404, "RE0404", {
    verify(&Program::new(
        "re0404",
        [3, 8, 8],
        vec![maxpool("pool1", 1, 1)],
        4,
    ))
});

golden_case!(re0405, "RE0405", {
    verify(&Program::new("re0405", [3, 16, 16], vec![], 4))
});

// ---- RE05xx: spec conformance ----------------------------------------------

golden_case!(re0501, "RE0501", {
    verify_against_spec(
        &base("re0501"),
        &base_spec(vec![
            spec_conv("conv1", 3),
            LayerSpec::MaxPool {
                name: "pool1".into(),
                window: 2,
                stride: 2,
                pad: 0,
            },
        ]),
        &ResourceLimits::default(),
    )
});

golden_case!(re0502, "RE0502", {
    verify_against_spec(
        &base("re0502"),
        &base_spec(vec![spec_conv("conv1_renamed", 3)]),
        &ResourceLimits::default(),
    )
});

golden_case!(re0503, "RE0503", {
    verify_against_spec(
        &base("re0503"),
        &base_spec(vec![spec_conv("conv1", 5)]),
        &ResourceLimits::default(),
    )
});

golden_case!(re0504, "RE0504", {
    let spec = NetworkSpec::new("base-spec", [3, 16, 16], vec![spec_conv("conv1", 3)]);
    verify_against_spec(&base("re0504"), &spec, &ResourceLimits::default())
});

// ---- RE06xx: signal range --------------------------------------------------

golden_case!(re0601, "RE0601", {
    verify(&with_conv(base("re0601"), |inst| {
        if let Instruction::Conv { bias, .. } = inst {
            bias.fill(-100.0);
        }
    }))
});

golden_case!(re0602, "RE0602", {
    verify(&with_conv(base("re0602"), |inst| {
        if let Instruction::Conv {
            relu, codes, bias, ..
        } = inst
        {
            *relu = false;
            codes.fill(-80);
            bias.fill(-1.0);
        }
    }))
});

golden_case!(re0603, "RE0603", {
    verify(&with_conv(base("re0603"), |inst| {
        if let Instruction::Conv { relu, codes, .. } = inst {
            *relu = false;
            for (i, c) in codes.iter_mut().enumerate() {
                *c = if i % 2 == 0 { 80 } else { -80 };
            }
        }
    }))
});

golden_case!(re0604, "RE0604", {
    let mut program = base("re0604");
    program.instructions.push(Instruction::AvgPool {
        name: "avg1".into(),
        window: 2,
        stride: 2,
        pad: 0,
        snr: SnrDb::new(50.0),
    });
    verify(&program)
});

golden_case!(re0605, "RE0605", {
    verify(&with_conv(base("re0605"), |inst| {
        if let Instruction::Conv { codes, .. } = inst {
            codes.fill(0);
        }
    }))
});

golden_case!(re0606, "RE0606", {
    let mut program = with_conv(base("re0606"), |inst| {
        if let Instruction::Conv { snr, .. } = inst {
            *snr = SnrDb::new(0.0);
        }
    });
    // 1-bit readout keeps RE0305 out of this snapshot.
    program.adc_bits = 1;
    verify(&program)
});

golden_case!(re0607, "RE0607", {
    let mut program = base("re0607");
    program.instructions.push(Instruction::Lrn {
        name: "norm1".into(),
        size: 5,
        alpha: 1e-4,
        beta: 0.75,
        k: 0.0,
        snr: SnrDb::new(50.0),
    });
    verify(&program)
});

// ---- RE07xx: static cost model ---------------------------------------------

golden_case!(re0701, "RE0701", {
    budget_report(
        "re0701",
        CostBudget {
            max_frame_energy: Some(Joules::new(1e-12)),
            max_frame_time: None,
        },
    )
});

golden_case!(re0702, "RE0702", {
    let bounds = analyze_cost(&base("re0702")).expect("cost derivable");
    let mid = (bounds.nominal.energy.value() + bounds.upper.energy.value()) / 2.0;
    budget_report(
        "re0702",
        CostBudget {
            max_frame_energy: Some(Joules::new(mid)),
            max_frame_time: None,
        },
    )
});

golden_case!(re0703, "RE0703", {
    budget_report(
        "re0703",
        CostBudget {
            max_frame_energy: None,
            max_frame_time: Some(Seconds::new(1e-15)),
        },
    )
});

golden_case!(re0704, "RE0704", {
    let bounds = analyze_cost(&base("re0704")).expect("cost derivable");
    let mid = (bounds.nominal.time.value() + bounds.upper.time.value()) / 2.0;
    budget_report(
        "re0704",
        CostBudget {
            max_frame_energy: None,
            max_frame_time: Some(Seconds::new(mid)),
        },
    )
});

fn with_snr(mut inst: Instruction, db: f64) -> Instruction {
    if let Instruction::Conv { snr, .. } = &mut inst {
        *snr = SnrDb::new(db);
    }
    inst
}
