//! End-to-end tests of the `redeye` command-line interface.

use std::process::Command;

fn redeye(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_redeye"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn estimate_prints_table_one_anchor() {
    let (ok, stdout, _) = redeye(&["estimate", "--depth", "5"]);
    assert!(ok);
    assert!(stdout.contains("Depth5"), "{stdout}");
    assert!(stdout.contains("1.4"), "Depth5 ≈ 1.4 mJ: {stdout}");
}

#[test]
fn estimate_json_is_valid() {
    let (ok, stdout, _) = redeye(&["estimate", "--depth", "3", "--snr", "50", "--json"]);
    assert!(ok);
    let v: serde_json::Value = serde_json::from_str(stdout.trim()).expect("valid JSON");
    assert_eq!(v["depth"], 3);
    assert_eq!(v["snr_db"], 50.0);
    assert!(v["analog_mj"].as_f64().unwrap() > 0.0);
}

#[test]
fn depths_lists_five_rows() {
    let (ok, stdout, _) = redeye(&["depths"]);
    assert!(ok);
    for d in 1..=5 {
        assert!(stdout.contains(&format!("Depth{d}")), "{stdout}");
    }
}

#[test]
fn systems_lists_six_scenarios() {
    let (ok, stdout, _) = redeye(&["systems"]);
    assert!(ok);
    assert_eq!(
        stdout.matches("RedEye").count(),
        3,
        "three RedEye scenarios: {stdout}"
    );
}

#[test]
fn partition_shows_cut() {
    let (ok, stdout, _) = redeye(&["partition", "--depth", "1"]);
    assert!(ok);
    assert!(stdout.contains("norm1"), "{stdout}");
    assert!(stdout.contains("inception_3a"), "{stdout}");
}

#[test]
fn bad_inputs_fail_cleanly() {
    let (ok, _, stderr) = redeye(&["estimate", "--depth", "9"]);
    assert!(!ok);
    assert!(stderr.contains("--depth"), "{stderr}");
    let (ok, _, stderr) = redeye(&["estimate", "--bits", "0"]);
    assert!(!ok);
    assert!(stderr.contains("--bits"), "{stderr}");
    let (ok, _, stderr) = redeye(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"), "{stderr}");
}

#[test]
fn help_exits_zero() {
    let (ok, stdout, _) = redeye(&["help"]);
    assert!(ok);
    assert!(stdout.contains("USAGE"));
}
