//! The reproduction certificate: every quantitative claim of the paper's
//! evaluation, asserted in one place with its tolerance.
//!
//! Tolerances are deliberate: anchors the model is *calibrated against*
//! must hold tightly (≤2%); *derived* quantities — numbers the paper
//! computes from other numbers, which our models re-derive — get 15%,
//! covering the paper's own rounding and our geometry conventions.

use redeye::analog::{DampingConfig, SnrDb, TunableCap};
use redeye::core::{area, estimate, Depth, RedEyeConfig};
use redeye::system::{scenario, BleLink, ImageSensor, JetsonHost, JetsonKind, ShiDianNao};

fn assert_close(measured: f64, paper: f64, tolerance: f64, what: &str) {
    let rel = (measured - paper).abs() / paper.abs();
    assert!(
        rel <= tolerance,
        "{what}: measured {measured}, paper {paper} (rel err {rel:.3} > {tolerance})"
    );
}

#[test]
fn table1_operation_modes() {
    for (snr, cap_ff, energy_mj) in [
        (40.0, 10.0, 1.4),
        (50.0, 100.0, 14.0),
        (60.0, 1000.0, 140.0),
    ] {
        let damping = DampingConfig::from_snr(SnrDb::new(snr));
        assert_close(
            damping.capacitance().value() * 1e15,
            cap_ff,
            0.001,
            "Table I damping capacitance",
        );
        let config = RedEyeConfig {
            snr: SnrDb::new(snr),
            ..RedEyeConfig::default()
        };
        let est = estimate::estimate_depth(Depth::D5, &config).unwrap();
        assert_close(
            est.energy.analog_total().millis(),
            energy_mj,
            0.15,
            "Table I Depth5 energy",
        );
    }
}

#[test]
fn section_5b_sensor_comparison() {
    // "the analog portion of the image sensor [consumes] 1.1 mJ per frame"
    let sensor = ImageSensor::paper_baseline();
    assert_close(
        sensor.analog_energy_per_frame().millis(),
        1.1,
        0.001,
        "image sensor frame energy",
    );
    // "the processing and quantization of Depth1 on RedEye consumes 170 µJ"
    let d1 = estimate::estimate_depth(Depth::D1, &RedEyeConfig::default()).unwrap();
    assert_close(
        d1.energy.analog_total().micros(),
        170.0,
        0.15,
        "Depth1 energy",
    );
    // "This presents an 84.5% sensor energy reduction."
    assert_close(
        scenario::sensor_energy_reduction(&RedEyeConfig::default()),
        0.845,
        0.05,
        "sensor energy reduction",
    );
}

#[test]
fn section_5b_cloudlet() {
    let ble = BleLink::paper_characterization();
    // "exporting a 227×227 frame will consume 129.42 mJ over 1.54 seconds"
    let raw_bits = ImageSensor::paper_baseline().bits_per_frame();
    assert_close(
        ble.energy(raw_bits).millis(),
        129.42,
        0.001,
        "BLE raw frame energy",
    );
    assert_close(
        ble.time(raw_bits).value(),
        1.54,
        0.001,
        "BLE raw frame time",
    );
    // "RedEye Depth4 output only consumes 33.7 mJ per frame, over 0.40 s"
    let d4 = estimate::estimate_depth(Depth::D4, &RedEyeConfig::default()).unwrap();
    assert_close(
        ble.energy(d4.readout_bits).millis(),
        33.7,
        0.02,
        "BLE Depth4 energy",
    );
    assert_close(
        ble.time(d4.readout_bits).value(),
        0.40,
        0.02,
        "BLE Depth4 time",
    );
    // "RedEye saves 73.2% of system energy consumption"
    let saving = scenario::reduction(
        scenario::cloudlet_raw().energy,
        scenario::cloudlet_redeye(Depth::D4, &RedEyeConfig::default()).energy,
    );
    assert_close(saving, 0.732, 0.02, "cloudlet system saving");
}

#[test]
fn section_5b_jetson() {
    let gpu = JetsonHost::fit(JetsonKind::Gpu);
    // "consumes 12.2 W over 33 ms, for 406 mJ per frame" (12.2·33 = 402.6)
    assert_close(
        gpu.run_googlenet_full().time.millis(),
        33.0,
        0.001,
        "GPU full time",
    );
    assert_close(
        gpu.run_googlenet_full().energy.millis(),
        406.0,
        0.02,
        "GPU full energy",
    );
    // "reduces the Jetson processing time for the GPU to 18.6 ms"
    assert_close(
        gpu.run_googlenet_suffix(Depth::D5).time.millis(),
        18.6,
        0.001,
        "GPU remainder time",
    );
    let cpu = JetsonHost::fit(JetsonKind::Cpu);
    // "3.1 W over 545 ms, for 1.7 J per frame"
    assert_close(
        cpu.run_googlenet_full().time.millis(),
        545.0,
        0.001,
        "CPU full time",
    );
    assert_close(
        cpu.run_googlenet_full().energy.value(),
        1.7,
        0.02,
        "CPU full energy",
    );
    assert_close(
        cpu.run_googlenet_suffix(Depth::D5).time.millis(),
        297.0,
        0.001,
        "CPU remainder time",
    );
    // "44.3% and 45.6% of the energy per frame"
    let config = RedEyeConfig::default();
    let gpu_saving = scenario::reduction(
        scenario::conventional_host(JetsonKind::Gpu).energy,
        scenario::redeye_host(JetsonKind::Gpu, Depth::D5, &config).energy,
    );
    assert_close(gpu_saving, 0.443, 0.05, "GPU system saving");
    let cpu_saving = scenario::reduction(
        scenario::conventional_host(JetsonKind::Cpu).energy,
        scenario::redeye_host(JetsonKind::Cpu, Depth::D5, &config).energy,
    );
    assert_close(cpu_saving, 0.456, 0.05, "CPU system saving");
    // "accelerates execution for the CPU from 1.83 fps to 3.36 fps"
    assert_close(
        scenario::conventional_host(JetsonKind::Cpu).pipelined_fps,
        1.83,
        0.05,
        "CPU fps before",
    );
    assert_close(
        scenario::redeye_host(JetsonKind::Cpu, Depth::D5, &config).pipelined_fps,
        3.36,
        0.05,
        "CPU fps after",
    );
}

#[test]
fn section_5b_shidiannao() {
    // "144 instances … for 2.18 mJ … over 3.2 mJ per frame [with sensor]"
    let sdn = ShiDianNao::paper_configuration();
    assert_close(sdn.frame_energy().millis(), 2.18, 0.001, "ShiDianNao frame");
    assert_close(
        sdn.system_energy(&ImageSensor::paper_baseline()).millis(),
        3.28,
        0.01,
        "ShiDianNao system",
    );
    // "system energy consumption is reduced by 59%"
    let (_, _, saving) = scenario::shidiannao_comparison(&RedEyeConfig::default());
    assert_close(saving, 0.59, 0.05, "ShiDianNao saving");
}

#[test]
fn section_5b_timing() {
    // "RedEye is not the limiting factor … requiring only 32 ms"
    let d5 = estimate::estimate_depth(Depth::D5, &RedEyeConfig::default()).unwrap();
    assert_close(
        d5.timing.frame_time().millis(),
        32.0,
        0.05,
        "Depth5 frame time",
    );
    // "'real-time' 30 fps"
    assert!(d5.timing.fps() >= 30.0);
}

#[test]
fn section_4a_weight_dac() {
    // "this reduces energy by a factor of 32" (8-bit MAC sampling caps)
    let tc = TunableCap::new(8).unwrap();
    assert_close(tc.capacitor_reduction_factor(), 32.0, 0.01, "DAC reduction");
}

#[test]
fn section_5d_area_and_controller() {
    // "Each column slice is estimated to occupy 0.225 mm², with a low
    //  interconnect complexity of 23 per column … die size of 10.2 × 5.0 mm²,
    //  including the 0.5 × 7 mm² microcontroller and 4.5 × 4.5 mm² pixel array"
    let a = area::AreaEstimate::paper_design();
    assert_eq!(a.columns, 227);
    assert_eq!(a.interconnects / a.columns, 23);
    assert_close(a.die_mm2, 51.0, 0.001, "die area");
    assert_close(a.controller_mm2, 3.5, 0.001, "controller area");
    assert_close(a.pixel_array_mm2, 20.25, 0.001, "pixel array area");
    // "the Cortex-M0+ consumes an additional 12 mW"
    assert_close(
        estimate::controller_power().value() * 1e3,
        12.0,
        0.05,
        "controller power",
    );
    // "RedEye requires 100-kB memory to store features and 9-kB for kernels,
    //  which fit within the 128-kB on-chip SRAM"
    let (feature, kernel, total) = (
        redeye::core::FEATURE_SRAM_BYTES,
        redeye::core::KERNEL_SRAM_BYTES,
        redeye::core::TOTAL_SRAM_BYTES,
    );
    assert_eq!((feature, kernel), (100 * 1024, 9 * 1024));
    assert!(feature + kernel <= total);
}

#[test]
fn fig7c_payload_shape() {
    // "4-bit RedEye operation reduces output data size to nearly half of
    //  the image sensor's data size" (Depth1)
    let d1 = estimate::estimate_depth(Depth::D1, &RedEyeConfig::default()).unwrap();
    let ratio = d1.readout_bits as f64 / ImageSensor::paper_baseline().bits_per_frame() as f64;
    assert!(
        (0.45..0.60).contains(&ratio),
        "Depth1 payload ratio {ratio}"
    );
}

#[test]
fn fig7a_energy_ordering() {
    // Energy grows with depth; Depth1 is the RedEye-alone minimum and
    // beats the conventional sensor.
    let config = RedEyeConfig::default();
    let ests = estimate::estimate_all_depths(&config).unwrap();
    let sensor = ImageSensor::paper_baseline().analog_energy_per_frame();
    assert!(ests[0].1.energy.analog_total() < sensor);
    for pair in ests.windows(2) {
        assert!(pair[1].1.energy.analog_total() > pair[0].1.energy.analog_total());
    }
}
