//! Cross-crate integration tests: the full RedEye workflow from synthetic
//! capture through analog execution to host-side classification.

use redeye::analog::SnrDb;
use redeye::core::estimate;
use redeye::core::{compile, CompileOptions, Depth, Executor, RedEyeConfig, WeightBank};
use redeye::dataset::{sensor, SyntheticDataset};
use redeye::nn::train::{evaluate, train_epoch, Example, Sgd};
use redeye::nn::{build_network, zoo, WeightInit};
use redeye::tensor::{Rng, Tensor};

/// Trains a small model quickly and returns (spec, trained network).
fn quick_trained() -> (redeye::nn::NetworkSpec, redeye::nn::Network) {
    let spec = zoo::micronet(4, 10);
    let dataset = SyntheticDataset::new(10, 32, 3);
    let mut rng = Rng::seed_from(3);
    let fpn = sensor::FixedPatternNoise::new(&[3, 32, 32], 0.01, 0.005, &mut rng);
    let train: Vec<Example> = dataset
        .batch(0, 300)
        .into_iter()
        .map(|li| Example {
            input: sensor::capture_raw(&li.image, 10_000.0, &fpn, &mut rng),
            label: li.label,
        })
        .collect();
    let mut net = build_network(&spec, WeightInit::HeNormal, &mut rng).unwrap();
    let mut opt = Sgd::new(0.02, 0.9, 1e-4);
    for _ in 0..10 {
        train_epoch(&mut net, &mut opt, &train, 16).unwrap();
    }
    (spec, net)
}

#[test]
fn trained_network_beats_chance_on_fresh_captures() {
    let (_spec, mut net) = quick_trained();
    let dataset = SyntheticDataset::new(10, 32, 3);
    let mut rng = Rng::seed_from(9);
    let fpn = sensor::FixedPatternNoise::new(&[3, 32, 32], 0.01, 0.005, &mut rng);
    let val: Vec<Example> = dataset
        .batch(50_000, 100)
        .into_iter()
        .map(|li| Example {
            input: sensor::capture_raw(&li.image, 10_000.0, &fpn, &mut rng),
            label: li.label,
        })
        .collect();
    let acc = evaluate(&mut net, &val).unwrap();
    assert!(acc > 0.3, "top-1 {acc} should beat 10% chance clearly");
}

/// The headline workflow: features computed in the analog domain feed the
/// digital host suffix, and classification still works.
#[test]
fn analog_features_classify_on_host() {
    let (spec, mut net) = quick_trained();
    let cut = "pool3";
    let prefix = spec.prefix_through(cut).unwrap();

    // Compile the prefix with the trained weights.
    let mut bank = WeightBank::from_network(&mut net);
    let opts = CompileOptions {
        weight_bits: 8,
        snr: SnrDb::new(40.0),
        adc_bits: 6,
        ..CompileOptions::default()
    };
    let program = compile(&prefix, &mut bank, &opts).unwrap();
    let mut executor = Executor::new(program, 5);

    // Build the host-side suffix as its own network sharing trained weights:
    // rebuild the full net and drop prefix nodes.
    let dataset = SyntheticDataset::new(10, 32, 3);
    let mut rng = Rng::seed_from(11);
    let fpn = sensor::FixedPatternNoise::new(&[3, 32, 32], 0.01, 0.005, &mut rng);

    let cut_pos = spec.position_of(cut).unwrap();
    let mut correct_analog = 0usize;
    let mut correct_digital = 0usize;
    let n = 60;
    for i in 0..n {
        let li = dataset.sample(90_000 + i);
        let raw = sensor::capture_raw(&li.image, 10_000.0, &fpn, &mut rng);

        // Digital reference: full network.
        let digital_logits = net.forward(&raw).unwrap();
        if digital_logits.argmax().unwrap() == li.label {
            correct_digital += 1;
        }

        // Analog path: executor produces features; host runs the suffix.
        let result = executor.execute(&raw).unwrap();
        let mut x = result.features;
        // Feed through the remaining nodes of the trained network.
        for node in net.nodes_mut().iter_mut().skip(cut_pos + 1) {
            x = match node {
                redeye::nn::Node::Layer(layer) => layer.forward(&x).unwrap(),
                redeye::nn::Node::Concat { .. } => unreachable!("micronet has no concat"),
            };
        }
        if x.argmax().unwrap() == li.label {
            correct_analog += 1;
        }
    }
    let analog_acc = correct_analog as f32 / n as f32;
    let digital_acc = correct_digital as f32 / n as f32;
    assert!(
        digital_acc > 0.3,
        "digital reference should classify: {digital_acc}"
    );
    // The analog path at 40 dB / 6-bit should track the digital reference.
    assert!(
        analog_acc >= digital_acc - 0.15,
        "analog {analog_acc} vs digital {digital_acc}"
    );
}

#[test]
fn estimate_matches_executor_counters_on_googlenet_front() {
    // Cross-check: the analytic estimator and the functional executor charge
    // identical operation counts for the same (small) prefix.
    let spec = zoo::tiny_inception(10);
    let prefix = spec.prefix_through("pool2").unwrap();
    let mut rng = Rng::seed_from(13);
    let mut net = build_network(&prefix, WeightInit::HeNormal, &mut rng).unwrap();
    let mut bank = WeightBank::from_network(&mut net);
    let program = compile(&prefix, &mut bank, &CompileOptions::default()).unwrap();

    let summary = redeye::nn::summarize(&spec).unwrap();
    let totals = summary.prefix_totals("pool2").unwrap();
    let est = estimate::estimate_prefix(&totals, &RedEyeConfig::default());

    let mut executor = Executor::new(program, 1);
    let result = executor.execute(&Tensor::full(&[3, 32, 32], 0.4)).unwrap();

    assert_eq!(result.ledger.macs, est.energy.macs);
    assert_eq!(result.ledger.comparisons, est.energy.comparisons);
    assert_eq!(result.ledger.conversions, est.energy.conversions);
    assert_eq!(result.ledger.readout_bits, est.readout_bits);
    // Energies agree to within the comparator's data-dependence.
    let rel = (result.ledger.processing.value() - est.energy.processing.value()).abs()
        / est.energy.processing.value();
    assert!(rel < 1e-6, "processing energy mismatch {rel}");
}

/// The batched throughput engine produces the same frame stream as the
/// serial executor on the full trained-capture workflow — same program,
/// same raw-captured inputs, compared frame by frame.
#[test]
fn batched_execution_matches_serial_on_captured_frames() {
    use redeye::core::BatchExecutor;

    let (spec, mut net) = quick_trained();
    let prefix = spec.prefix_through("pool3").unwrap();
    let mut bank = WeightBank::from_network(&mut net);
    let program = compile(&prefix, &mut bank, &CompileOptions::default()).unwrap();

    let dataset = SyntheticDataset::new(10, 32, 3);
    let mut rng = Rng::seed_from(17);
    let fpn = sensor::FixedPatternNoise::new(&[3, 32, 32], 0.01, 0.005, &mut rng);
    let frames: Vec<Tensor> = dataset
        .batch(70_000, 6)
        .into_iter()
        .map(|li| sensor::capture_raw(&li.image, 10_000.0, &fpn, &mut rng))
        .collect();

    let mut serial = Executor::new(program.clone(), 5);
    let want: Vec<_> = frames.iter().map(|f| serial.execute(f).unwrap()).collect();

    let mut batch = BatchExecutor::new(program, 5, 3).unwrap();
    let got = batch.execute_batch(&frames).unwrap();
    assert_eq!(got.len(), want.len());
    for (i, (w, g)) in want.iter().zip(got.frames.iter()).enumerate() {
        assert_eq!(w.features, g.features, "frame {i} features");
        assert_eq!(w.codes, g.codes, "frame {i} codes");
        assert!(w.ledger == g.ledger, "frame {i} ledger");
        assert_eq!(w.forced_decisions, g.forced_decisions, "frame {i} tally");
    }
}

#[test]
fn paper_headline_numbers_hold_end_to_end() {
    use redeye::system::{scenario, ImageSensor};
    let config = RedEyeConfig::default();

    // 84.5% sensor energy reduction.
    let r = scenario::sensor_energy_reduction(&config);
    assert!((0.80..0.90).contains(&r), "sensor reduction {r}");

    // Depth5 Table I anchor.
    let d5 = estimate::estimate_depth(Depth::D5, &config).unwrap();
    assert!((1.2..1.6).contains(&d5.energy.analog_total().millis()));

    // 30 fps.
    assert!(d5.timing.fps() > 27.0);

    // Conventional sensor untouched.
    let is = ImageSensor::paper_baseline();
    assert!((is.analog_energy_per_frame().millis() - 1.1).abs() < 1e-9);
}
