//! Integration tests of the Fig. 9 / Fig. 10 *shapes*: task accuracy is
//! robust to Gaussian noise down to moderate SNR and to quantization down to
//! a few bits, then collapses — the paper's central empirical claim.

use redeye::analog::SnrDb;
use redeye::dataset::{sensor, SyntheticDataset};
use redeye::nn::train::{train_epoch, Example, Sgd};
use redeye::nn::{build_network, zoo, WeightInit};
use redeye::sim::{extract_params, instrument, AccuracyHarness, InstrumentOptions};
use redeye::tensor::{Rng, Tensor};

struct Setup {
    spec: redeye::nn::NetworkSpec,
    params: Vec<Tensor>,
    harness: AccuracyHarness,
}

fn setup() -> Setup {
    let spec = zoo::micronet(6, 10);
    let dataset = SyntheticDataset::new(10, 32, 21);
    let mut rng = Rng::seed_from(21);
    let fpn = sensor::FixedPatternNoise::new(&[3, 32, 32], 0.01, 0.005, &mut rng);
    let train: Vec<Example> = dataset
        .batch(0, 500)
        .into_iter()
        .map(|li| Example {
            input: sensor::capture_raw(&li.image, 10_000.0, &fpn, &mut rng),
            label: li.label,
        })
        .collect();
    let mut net = build_network(&spec, WeightInit::HeNormal, &mut rng).unwrap();
    let mut opt = Sgd::new(0.02, 0.9, 1e-4);
    for epoch in 0..14 {
        train_epoch(&mut net, &mut opt, &train, 16).unwrap();
        if epoch == 10 {
            opt.learning_rate *= 0.3;
        }
    }
    let params = extract_params(&mut net);
    let val: Vec<(Tensor, usize)> = dataset
        .batch(700_000, 150)
        .into_iter()
        .map(|li| {
            (
                sensor::capture_raw(&li.image, 10_000.0, &fpn, &mut rng),
                li.label,
            )
        })
        .collect();
    Setup {
        spec,
        params,
        harness: AccuracyHarness::new(val, 4),
    }
}

fn accuracy(setup: &Setup, snr_db: f64, bits: u32) -> f32 {
    setup
        .harness
        .evaluate(|worker| {
            let opts = InstrumentOptions {
                snr: SnrDb::new(snr_db),
                adc_bits: bits,
                seed: 100 + worker as u64,
                ..InstrumentOptions::paper_default("pool3")
            };
            instrument(&setup.spec, &setup.params, &opts)
        })
        .unwrap()
        .top1
}

#[test]
fn fig9_shape_robust_above_40db_collapses_below() {
    let s = setup();
    let clean = accuracy(&s, 80.0, 8);
    let at_40 = accuracy(&s, 40.0, 8);
    let at_5 = accuracy(&s, 5.0, 8);
    assert!(clean > 0.4, "trained model must work: clean {clean}");
    // 40 dB costs almost nothing (paper: 89% top-5 at the 40 dB floor).
    assert!(
        at_40 >= clean - 0.1,
        "40 dB should be near-transparent: {at_40} vs clean {clean}"
    );
    // Deep noise destroys the task.
    assert!(
        at_5 < clean - 0.15,
        "5 dB should degrade: {at_5} vs clean {clean}"
    );
}

#[test]
fn fig10_shape_flat_above_4_bits_collapses_at_1() {
    let s = setup();
    let at_8 = accuracy(&s, 40.0, 8);
    let at_4 = accuracy(&s, 40.0, 4);
    let at_1 = accuracy(&s, 40.0, 1);
    assert!(at_8 > 0.4, "trained model must work at 8 bits: {at_8}");
    // Paper: "from the range of 4–6 bits, all depth configurations operate
    // with similarly high accuracy."
    assert!(
        at_4 >= at_8 - 0.12,
        "4 bits should roughly match 8: {at_4} vs {at_8}"
    );
    assert!(at_1 < at_8 - 0.1, "1 bit should hurt: {at_1} vs {at_8}");
}

#[test]
fn weight_quantization_to_8_bits_is_accurate() {
    // Paper §IV-A: 8-bit fixed-point weights suffice.
    let s = setup();
    let full_precision = {
        let opts = InstrumentOptions {
            snr: SnrDb::new(80.0),
            adc_bits: 10,
            weight_bits: None,
            noise_input: false,
            ..InstrumentOptions::paper_default("pool3")
        };
        s.harness
            .evaluate(|_| instrument(&s.spec, &s.params, &opts))
            .unwrap()
            .top1
    };
    let eight_bit = {
        let opts = InstrumentOptions {
            snr: SnrDb::new(80.0),
            adc_bits: 10,
            weight_bits: Some(8),
            noise_input: false,
            ..InstrumentOptions::paper_default("pool3")
        };
        s.harness
            .evaluate(|_| instrument(&s.spec, &s.params, &opts))
            .unwrap()
            .top1
    };
    assert!(
        eight_bit >= full_precision - 0.05,
        "8-bit weights {eight_bit} vs fp32 {full_precision}"
    );
}
